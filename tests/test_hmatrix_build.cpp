// H-matrix assembly tests: block-tree structure, approximation accuracy,
// compression, norms, stats, and the structure renderer.
#include <gtest/gtest.h>

#include "hmat_test_utils.hpp"

namespace hcham {
namespace {

using hmat::HMatrix;
using hcham::testing::HmatFixture;
using hcham::testing::hmat_options;
using hcham::testing::rel_diff;
using hcham::testing::zdouble;

/// Walk the block tree and verify structural invariants.
template <typename T>
void check_block_tree(const HMatrix<T>& h) {
  EXPECT_GT(h.rows(), 0);
  EXPECT_GT(h.cols(), 0);
  switch (h.kind()) {
    case HMatrix<T>::Kind::Full:
      EXPECT_EQ(h.full().rows(), h.rows());
      EXPECT_EQ(h.full().cols(), h.cols());
      break;
    case HMatrix<T>::Kind::Rk:
      EXPECT_EQ(h.rk().rows(), h.rows());
      EXPECT_EQ(h.rk().cols(), h.cols());
      EXPECT_LE(h.rk().rank(), std::min(h.rows(), h.cols()));
      break;
    case HMatrix<T>::Kind::Hierarchical: {
      index_t rows = 0, cols = 0;
      for (int i = 0; i < 2; ++i) rows += h.child(i, 0).rows();
      for (int j = 0; j < 2; ++j) cols += h.child(0, j).cols();
      EXPECT_EQ(rows, h.rows());
      EXPECT_EQ(cols, h.cols());
      for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j) check_block_tree(h.child(i, j));
      break;
    }
  }
}

TEST(HmatBuild, StructureInvariants) {
  HmatFixture<double> fx(500);
  auto h = fx.build(hmat_options(1e-6));
  check_block_tree(h);
  auto stats = h.stats();
  EXPECT_GT(stats.rk_leaves, 0);
  EXPECT_GT(stats.full_leaves, 0);
}

TEST(HmatBuild, DiagonalBlocksAreNeverLowRank) {
  HmatFixture<double> fx(400);
  auto h = fx.build(hmat_options(1e-6));
  // Walk the diagonal: every diagonal node must be Full or Hierarchical.
  const HMatrix<double>* node = &h;
  while (node->is_hierarchical()) {
    EXPECT_FALSE(node->child(0, 0).is_rk());
    EXPECT_FALSE(node->child(1, 1).is_rk());
    node = &node->child(0, 0);
  }
  EXPECT_TRUE(node->is_full());
}

template <typename T>
void check_approximation(index_t n, double eps, double factor) {
  HmatFixture<T> fx(n);
  auto h = fx.build(hmat_options(eps));
  auto exact = fx.dense_permuted();
  EXPECT_LT(rel_diff<T>(h.to_dense().cview(), exact.cview()), factor * eps)
      << "n=" << n << " eps=" << eps;
}

TEST(HmatBuild, ApproximatesDenseReal) {
  check_approximation<double>(300, 1e-4, 50);
  check_approximation<double>(300, 1e-8, 500);
}

TEST(HmatBuild, ApproximatesDenseComplex) {
  check_approximation<zdouble>(300, 1e-4, 50);
}

class HmatBuildEps : public ::testing::TestWithParam<double> {};

TEST_P(HmatBuildEps, AccuracyScalesWithEps) {
  const double eps = GetParam();
  HmatFixture<double> fx(400);
  auto h = fx.build(hmat_options(eps));
  auto exact = fx.dense_permuted();
  const double err = rel_diff<double>(h.to_dense().cview(), exact.cview());
  EXPECT_LT(err, 100 * eps);
}

INSTANTIATE_TEST_SUITE_P(EpsSweep, HmatBuildEps,
                         ::testing::Values(1e-2, 1e-4, 1e-6, 1e-10));

TEST(HmatBuild, CompressionImprovesWithN) {
  // The whole point of H-matrices: the compression ratio decreases as the
  // problem grows (log-linear storage).
  HmatFixture<double> small(256);
  HmatFixture<double> large(2048);
  auto hs = small.build(hmat_options(1e-4));
  auto hl = large.build(hmat_options(1e-4));
  EXPECT_LT(hl.compression_ratio(), hs.compression_ratio());
  EXPECT_LT(hl.compression_ratio(), 0.6);
}

TEST(HmatBuild, StoredElementsConsistentWithStats) {
  HmatFixture<double> fx(600);
  auto h = fx.build(hmat_options(1e-4));
  EXPECT_EQ(h.stored_elements(), [&] {
    // Recompute independently: sum over leaves.
    index_t total = 0;
    std::vector<const hmat::HMatrix<double>*> stack{&h};
    while (!stack.empty()) {
      const auto* node = stack.back();
      stack.pop_back();
      if (node->is_hierarchical()) {
        for (int i = 0; i < 2; ++i)
          for (int j = 0; j < 2; ++j) stack.push_back(&node->child(i, j));
      } else if (node->is_full()) {
        total += node->rows() * node->cols();
      } else {
        total += (node->rows() + node->cols()) * node->rk().rank();
      }
    }
    return total;
  }());
}

TEST(HmatBuild, NormFroMatchesDense) {
  HmatFixture<double> fx(350);
  auto h = fx.build(hmat_options(1e-8));
  const double exact = la::norm_fro(fx.dense_permuted().cview());
  EXPECT_NEAR(h.norm_fro(), exact, 1e-5 * exact);
}

TEST(HmatBuild, NormFroMatchesDenseComplex) {
  HmatFixture<zdouble> fx(250);
  auto h = fx.build(hmat_options(1e-8));
  const double exact = la::norm_fro(fx.dense_permuted().cview());
  EXPECT_NEAR(h.norm_fro(), exact, 1e-5 * exact);
}

TEST(HmatBuild, WeakAdmissibilityGivesMoreRkLeaves) {
  HmatFixture<double> fx(500);
  auto strong = fx.build(hmat_options(1e-4, 2.0));
  hmat::HMatrixOptions weak_opts;
  weak_opts.admissibility = cluster::AdmissibilityCondition::weak();
  weak_opts.compression.eps = 1e-4;
  auto weak = hmat::build_hmatrix<double>(fx.tree, fx.tree->root(),
                                          fx.tree->root(), fx.generator(),
                                          weak_opts);
  EXPECT_GT(weak.stats().rk_leaves, strong.stats().rk_leaves);
}

TEST(HmatBuild, NoAdmissibilityIsExact) {
  HmatFixture<double> fx(200);
  hmat::HMatrixOptions opts;
  opts.admissibility = cluster::AdmissibilityCondition::none();
  auto h = hmat::build_hmatrix<double>(fx.tree, fx.tree->root(),
                                       fx.tree->root(), fx.generator(), opts);
  EXPECT_EQ(h.stats().rk_leaves, 0);
  EXPECT_LT(rel_diff<double>(h.to_dense().cview(),
                             fx.dense_permuted().cview()),
            1e-15);
}

TEST(HmatBuild, RectangularOffDiagonalBlock) {
  // Build an H-matrix over two different clusters (off-diagonal block of
  // the root), as the Tile-H construction does for every tile.
  HmatFixture<double> fx(600);
  const auto& root = fx.tree->node(fx.tree->root());
  ASSERT_FALSE(root.is_leaf());
  auto h = hmat::build_hmatrix<double>(fx.tree, root.child[0], root.child[1],
                                       fx.generator(), hmat_options(1e-6));
  check_block_tree(h);
  // Compare against the exact permuted sub-block.
  auto full = fx.dense_permuted();
  const auto& rc = fx.tree->node(root.child[0]);
  const auto& cc = fx.tree->node(root.child[1]);
  EXPECT_LT(rel_diff<double>(
                h.to_dense().cview(),
                full.block(rc.offset, cc.offset, rc.size, cc.size)),
            1e-4);
}

TEST(HmatBuild, StructureAsciiRendersAllCells) {
  HmatFixture<double> fx(300);
  auto h = fx.build(hmat_options(1e-4));
  const std::string art = hmat::structure_ascii(h, 32);
  // 32 lines of 32 chars + newlines, no blanks left.
  EXPECT_EQ(art.size(), 32u * 33u);
  EXPECT_EQ(art.find(' '), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);  // dense diagonal
}

TEST(HmatBuild, SummaryMentionsCompression) {
  HmatFixture<double> fx(200);
  auto h = fx.build(hmat_options(1e-4));
  EXPECT_NE(hmat::structure_summary(h).find("compression="),
            std::string::npos);
}

TEST(HmatBuild, BuildStructureCreatesZeroMatrix) {
  HmatFixture<double> fx(300);
  hmat::HMatrix<double> z(fx.tree, fx.tree->root(), fx.tree->root());
  hmat::build_structure(z, cluster::AdmissibilityCondition::strong(2.0));
  EXPECT_EQ(z.norm_fro(), 0.0);
  check_block_tree(z);
}

}  // namespace
}  // namespace hcham
