// End-to-end H-LU tests: factorization accuracy, solves, forward error
// against known solutions, the paper's accuracy regime (eps = 1e-4), and
// H-TRSM consistency within the factorization.
#include <gtest/gtest.h>

#include "hmat_test_utils.hpp"

namespace hcham {
namespace {

using hmat::HMatrix;
using la::Matrix;
using la::Op;
using rk::TruncationParams;
using hcham::testing::HmatFixture;
using hcham::testing::hmat_options;
using hcham::testing::rel_diff;
using hcham::testing::zdouble;

/// Forward error of the H-LU solve for a known solution x0:
/// ||x - x0|| / ||x0|| (the paper's Fig. 5 metric).
template <typename T>
double forward_error(HmatFixture<T>& fx, double eps) {
  const index_t n = fx.problem->size();
  auto h = fx.build(hcham::testing::hmat_options(eps));
  auto dense = fx.dense_permuted();

  auto x0 = Matrix<T>::random(n, 1, 77);
  Matrix<T> b(n, 1);
  la::gemm(Op::NoTrans, Op::NoTrans, T{1}, dense.cview(), x0.cview(), T{},
           b.view());

  if (hmat::hlu(h, TruncationParams{eps, -1}) != 0) return 1e30;
  hmat::hlu_solve(h, b.view());
  Matrix<T> diff = Matrix<T>::from_view(b.cview());
  la::axpy(T{-1}, x0.cview(), diff.view());
  return la::norm_fro(diff.cview()) / la::norm_fro(x0.cview());
}

TEST(Hlu, FactorizationReconstructsMatrix) {
  HmatFixture<double> fx(400);
  auto h = fx.build(hmat_options(1e-8));
  auto exact = h.to_dense();  // compare against the compressed matrix
  ASSERT_EQ(hmat::hlu(h, TruncationParams{1e-8, -1}), 0);

  // Rebuild L * U densely and compare.
  const index_t n = 400;
  auto lu = h.to_dense();
  Matrix<double> l(n, n), u(n, n);
  for (index_t j = 0; j < n; ++j) {
    l(j, j) = 1.0;
    for (index_t i = j + 1; i < n; ++i) l(i, j) = lu(i, j);
    for (index_t i = 0; i <= j; ++i) u(i, j) = lu(i, j);
  }
  Matrix<double> prod(n, n);
  la::gemm(Op::NoTrans, Op::NoTrans, 1.0, l.cview(), u.cview(), 0.0,
           prod.view());
  EXPECT_LT(rel_diff<double>(prod.cview(), exact.cview()), 1e-5);
}

TEST(Hlu, ForwardErrorRealAtPaperAccuracy) {
  HmatFixture<double> fx(500);
  // Paper Fig. 5: accuracy parameter 1e-4 gives forward errors of the same
  // magnitude order.
  EXPECT_LT(forward_error(fx, 1e-4), 1e-2);
}

TEST(Hlu, ForwardErrorRealTight) {
  HmatFixture<double> fx(500);
  EXPECT_LT(forward_error(fx, 1e-10), 1e-6);
}

TEST(Hlu, ForwardErrorComplex) {
  HmatFixture<zdouble> fx(400);
  EXPECT_LT(forward_error(fx, 1e-6), 1e-3);
}

class HluEps : public ::testing::TestWithParam<double> {};

TEST_P(HluEps, ForwardErrorTracksEps) {
  HmatFixture<double> fx(400);
  const double eps = GetParam();
  const double err = forward_error(fx, eps);
  EXPECT_LT(err, 1e3 * eps);  // generous constant; cond(A) is moderate
}

INSTANTIATE_TEST_SUITE_P(EpsSweep, HluEps,
                         ::testing::Values(1e-4, 1e-6, 1e-8, 1e-10));

TEST(Hlu, MultipleRhsSolve) {
  HmatFixture<double> fx(300);
  auto h = fx.build(hmat_options(1e-8));
  auto dense = fx.dense_permuted();
  auto x0 = Matrix<double>::random(300, 4, 91);
  Matrix<double> b(300, 4);
  la::gemm(Op::NoTrans, Op::NoTrans, 1.0, dense.cview(), x0.cview(), 0.0,
           b.view());
  ASSERT_EQ(hmat::hlu(h, TruncationParams{1e-8, -1}), 0);
  hmat::hlu_solve(h, b.view());
  EXPECT_LT(rel_diff<double>(b.cview(), x0.cview()), 1e-5);
}

TEST(Hlu, AdjointSolve) {
  HmatFixture<double> fx(300);
  auto h = fx.build(hmat_options(1e-8));
  auto dense = fx.dense_permuted();
  auto x0 = Matrix<double>::random(300, 1, 95);
  Matrix<double> b(300, 1);
  la::gemm(Op::ConjTrans, Op::NoTrans, 1.0, dense.cview(), x0.cview(), 0.0,
           b.view());
  ASSERT_EQ(hmat::hlu(h, TruncationParams{1e-8, -1}), 0);
  hmat::hlu_solve_adjoint(h, b.view());
  EXPECT_LT(rel_diff<double>(b.cview(), x0.cview()), 1e-5);
}

TEST(Hlu, WorksOnPurelyDenseStructure) {
  // With no admissible blocks the H-LU degenerates to a recursive dense LU.
  HmatFixture<double> fx(150);
  hmat::HMatrixOptions opts;
  opts.admissibility = cluster::AdmissibilityCondition::none();
  auto h = hmat::build_hmatrix<double>(fx.tree, fx.tree->root(),
                                       fx.tree->root(), fx.generator(), opts);
  auto dense = fx.dense_permuted();
  auto x0 = Matrix<double>::random(150, 1, 99);
  Matrix<double> b(150, 1);
  la::gemm(Op::NoTrans, Op::NoTrans, 1.0, dense.cview(), x0.cview(), 0.0,
           b.view());
  ASSERT_EQ(hmat::hlu(h, TruncationParams{1e-12, -1}), 0);
  hmat::hlu_solve(h, b.view());
  EXPECT_LT(rel_diff<double>(b.cview(), x0.cview()), 1e-8);
}

TEST(Hlu, ReportsZeroPivot) {
  // A singular matrix: the all-ones kernel gives a rank-1 dense matrix.
  auto mesh = bem::make_cylinder(64);
  cluster::ClusteringOptions copts;
  copts.leaf_size = 16;
  auto tree = std::make_shared<const cluster::ClusterTree>(
      cluster::ClusterTree::build(mesh.points, copts));
  hmat::HMatrixOptions opts;
  opts.admissibility = cluster::AdmissibilityCondition::none();
  auto ones = [](index_t, index_t) { return 1.0; };
  auto h = hmat::build_hmatrix<double>(tree, tree->root(), tree->root(), ones,
                                       opts);
  EXPECT_GT(hmat::hlu(h, TruncationParams{1e-12, -1}), 0);
}

TEST(Hlu, CompressionRetainedAfterFactorization) {
  HmatFixture<double> fx(1000);
  auto h = fx.build(hmat_options(1e-4));
  const double before = h.compression_ratio();
  ASSERT_EQ(hmat::hlu(h, TruncationParams{1e-4, -1}), 0);
  const double after = h.compression_ratio();
  // Fill-in is bounded: the factored matrix stays compressed.
  EXPECT_LT(after, 3 * before);
  EXPECT_LT(after, 1.0);
}

}  // namespace
}  // namespace hcham
