// H-arithmetic tests: matmat/gemv, structured additions, agglomeration,
// H-GEMM in mixed-structure configurations, H-TRSM.
#include <gtest/gtest.h>

#include "hmat_test_utils.hpp"

namespace hcham {
namespace {

using hmat::HMatrix;
using la::Matrix;
using la::Op;
using rk::TruncationParams;
using hcham::testing::HmatFixture;
using hcham::testing::hmat_options;
using hcham::testing::rel_diff;
using hcham::testing::zdouble;

constexpr double kEps = 1e-8;

template <typename T>
void check_matmat(Op op, index_t q) {
  HmatFixture<T> fx(300);
  auto h = fx.build(hmat_options(kEps));
  auto dense = fx.dense_permuted();
  auto x = Matrix<T>::random(300, q, 11);
  auto y = Matrix<T>::random(300, q, 12);
  auto y_ref = Matrix<T>::from_view(y.cview());
  const T alpha = T(2);
  const T beta = T(-1);
  hmat::matmat(op, alpha, h, x.cview(), beta, y.view());
  hcham::testing::reference_gemm(op, Op::NoTrans, alpha, dense.cview(),
                                 x.cview(), beta, y_ref.view());
  EXPECT_LT(rel_diff<T>(y.cview(), y_ref.cview()), 1e-6)
      << la::to_string(op);
}

TEST(HmatMatmat, AllOpsReal) {
  for (auto op : {Op::NoTrans, Op::Trans, Op::ConjTrans})
    check_matmat<double>(op, 3);
}

TEST(HmatMatmat, AllOpsComplex) {
  for (auto op : {Op::NoTrans, Op::Trans, Op::ConjTrans})
    check_matmat<zdouble>(op, 2);
}

TEST(HmatMatmat, SingleVectorGemv) {
  HmatFixture<double> fx(250);
  auto h = fx.build(hmat_options(kEps));
  auto dense = fx.dense_permuted();
  auto x = Matrix<double>::random(250, 1, 21);
  std::vector<double> y(250, 0.5), y_ref(250, 0.5);
  hmat::gemv(Op::NoTrans, 3.0, h, x.data(), 2.0, y.data());
  la::gemv<double>(Op::NoTrans, 3.0, dense.cview(), x.data(), 2.0,
                   y_ref.data());
  for (index_t i = 0; i < 250; ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-5);
}

TEST(HmatMatmat, LeftMultiplication) {
  HmatFixture<double> fx(300);
  auto h = fx.build(hmat_options(kEps));
  auto dense = fx.dense_permuted();
  auto x = Matrix<double>::random(4, 300, 31);
  Matrix<double> y(4, 300), y_ref(4, 300);
  hmat::matmat_left(1.5, x.cview(), h, 0.0, y.view());
  la::gemm(Op::NoTrans, Op::NoTrans, 1.5, x.cview(), dense.cview(), 0.0,
           y_ref.view());
  EXPECT_LT(rel_diff<double>(y.cview(), y_ref.cview()), 1e-6);
}

TEST(HmatAdd, RkUpdateDistributesOverTree) {
  HmatFixture<double> fx(300);
  auto h = fx.build(hmat_options(kEps));
  auto before = h.to_dense();
  auto u = Matrix<double>::random(300, 3, 41);
  auto v = Matrix<double>::random(300, 3, 42);
  rk::RkMatrix<double> r(Matrix<double>::from_view(u.cview()),
                         Matrix<double>::from_view(v.cview()));
  hmat::add_rk_to(h, -2.0, r, TruncationParams{1e-10, -1});
  auto expected = before;
  la::axpy(-2.0, r.dense().cview(), expected.view());
  EXPECT_LT(rel_diff<double>(h.to_dense().cview(), expected.cview()), 1e-7);
}

TEST(HmatAdd, DenseUpdateDistributesOverTree) {
  HmatFixture<zdouble> fx(250);
  auto h = fx.build(hmat_options(kEps));
  auto before = h.to_dense();
  // A low-rank perturbation expressed densely (so Rk leaves stay compact).
  auto d = hcham::testing::rank_r_matrix<zdouble>(250, 250, 2, 43);
  hmat::add_dense_to(h, zdouble(0, 1), d.cview(), TruncationParams{1e-10, -1});
  auto expected = before;
  la::axpy(zdouble(0, 1), d.cview(), expected.view());
  EXPECT_LT(rel_diff<zdouble>(h.to_dense().cview(), expected.cview()), 1e-6);
}

TEST(HmatAdd, ToRkAgglomeratesWholeMatrix) {
  // Use an off-diagonal (admissible-dominated) block so the agglomerated
  // rank stays moderate.
  HmatFixture<double> fx(600, 32, 16.0);
  const auto& root = fx.tree->node(fx.tree->root());
  auto h = hmat::build_hmatrix<double>(fx.tree, root.child[0], root.child[1],
                                       fx.generator(), hmat_options(1e-6));
  auto r = hmat::to_rk(h, TruncationParams{1e-6, -1});
  EXPECT_LT(rel_diff<double>(r.dense().cview(), h.to_dense().cview()), 1e-4);
  EXPECT_LT(r.rank(), h.rows() / 2);
}

// --- H-GEMM ----------------------------------------------------------------

template <typename T>
void check_hgemm_square(index_t n, double tol) {
  HmatFixture<T> fx(n);
  const auto opts = hmat_options(kEps);
  auto a = fx.build(opts);
  auto b = fx.build(opts);
  auto c = fx.build(opts);
  auto exact = fx.dense_permuted();

  Matrix<T> c_ref = c.to_dense();
  la::gemm(Op::NoTrans, Op::NoTrans, T{-1}, exact.cview(), exact.cview(),
           T{1}, c_ref.view());

  hmat::hgemm(T{-1}, a, b, c, TruncationParams{kEps, -1});
  EXPECT_LT(rel_diff<T>(c.to_dense().cview(), c_ref.cview()), tol);
}

TEST(Hgemm, SquareReal) { check_hgemm_square<double>(300, 1e-5); }
TEST(Hgemm, SquareComplex) { check_hgemm_square<zdouble>(250, 1e-5); }

TEST(Hgemm, RectangularBlocksAcrossTree) {
  // C_01 += A_00 * B_01: the panel-update shape of the LU factorization.
  HmatFixture<double> fx(600);
  const auto opts = hmat_options(kEps);
  const auto& root = fx.tree->node(fx.tree->root());
  auto gen = fx.generator();
  auto a00 = hmat::build_hmatrix<double>(fx.tree, root.child[0],
                                         root.child[0], gen, opts);
  auto b01 = hmat::build_hmatrix<double>(fx.tree, root.child[0],
                                         root.child[1], gen, opts);
  auto c01 = hmat::build_hmatrix<double>(fx.tree, root.child[0],
                                         root.child[1], gen, opts);

  auto full = fx.dense_permuted();
  const auto& c0 = fx.tree->node(root.child[0]);
  const auto& c1 = fx.tree->node(root.child[1]);
  auto a_d = Matrix<double>::from_view(
      full.block(c0.offset, c0.offset, c0.size, c0.size));
  auto b_d = Matrix<double>::from_view(
      full.block(c0.offset, c1.offset, c0.size, c1.size));
  auto c_ref = Matrix<double>::from_view(
      full.block(c0.offset, c1.offset, c0.size, c1.size));
  la::gemm(Op::NoTrans, Op::NoTrans, -1.0, a_d.cview(), b_d.cview(), 1.0,
           c_ref.view());

  hmat::hgemm(-1.0, a00, b01, c01, TruncationParams{kEps, -1});
  EXPECT_LT(rel_diff<double>(c01.to_dense().cview(), c_ref.cview()), 1e-5);
}

TEST(Hgemm, ProductOntoRkLeafViaAgglomeration) {
  // C far off-diagonal (likely a single Rk leaf at the top): A and B
  // subdivided products must agglomerate correctly onto it.
  HmatFixture<double> fx(800, 32, 24.0);
  const auto opts = hmat_options(1e-6);
  const auto& root = fx.tree->node(fx.tree->root());
  auto gen = fx.generator();
  auto a = hmat::build_hmatrix<double>(fx.tree, root.child[0], root.child[0],
                                       gen, opts);
  auto b = hmat::build_hmatrix<double>(fx.tree, root.child[0], root.child[1],
                                       gen, opts);
  auto c = hmat::build_hmatrix<double>(fx.tree, root.child[0], root.child[1],
                                       gen, opts);

  auto full = fx.dense_permuted();
  const auto& c0 = fx.tree->node(root.child[0]);
  const auto& c1 = fx.tree->node(root.child[1]);
  auto c_ref = Matrix<double>::from_view(
      full.block(c0.offset, c1.offset, c0.size, c1.size));
  la::gemm<double>(Op::NoTrans, Op::NoTrans, -1.0,
                   full.block(c0.offset, c0.offset, c0.size, c0.size),
                   full.block(c0.offset, c1.offset, c0.size, c1.size), 1.0,
                   c_ref.view());

  hmat::hgemm(-1.0, a, b, c, TruncationParams{1e-6, -1});
  EXPECT_LT(rel_diff<double>(c.to_dense().cview(), c_ref.cview()), 1e-4);
}

TEST(Hgemm, ZeroAlphaIsNoOp) {
  HmatFixture<double> fx(200);
  auto a = fx.build(hmat_options(1e-6));
  auto c = fx.build(hmat_options(1e-6));
  auto before = c.to_dense();
  hmat::hgemm(0.0, a, a, c, TruncationParams{1e-6, -1});
  EXPECT_EQ(rel_diff<double>(c.to_dense().cview(), before.cview()), 0.0);
}

// --- H-TRSM ------------------------------------------------------------------

TEST(Htrsm, DenseSolvesMatchTriangularFactors) {
  HmatFixture<double> fx(300);
  auto h = fx.build(hmat_options(kEps));
  ASSERT_EQ(hmat::hlu(h, TruncationParams{kEps, -1}), 0);

  // Extract L and U densely from the factored H-matrix.
  auto lu = h.to_dense();
  Matrix<double> l(300, 300), u(300, 300);
  for (index_t j = 0; j < 300; ++j) {
    l(j, j) = 1.0;
    for (index_t i = j + 1; i < 300; ++i) l(i, j) = lu(i, j);
    for (index_t i = 0; i <= j; ++i) u(i, j) = lu(i, j);
  }

  auto b = Matrix<double>::random(300, 2, 51);
  auto x = Matrix<double>::from_view(b.cview());
  hmat::solve_lower_left(h, x.view());
  Matrix<double> recon(300, 2);
  la::gemm(Op::NoTrans, Op::NoTrans, 1.0, l.cview(), x.cview(), 0.0,
           recon.view());
  EXPECT_LT(rel_diff<double>(recon.cview(), b.cview()), 1e-10);

  auto x2 = Matrix<double>::from_view(b.cview());
  hmat::solve_upper_left(h, x2.view());
  la::gemm(Op::NoTrans, Op::NoTrans, 1.0, u.cview(), x2.cview(), 0.0,
           recon.view());
  EXPECT_LT(rel_diff<double>(recon.cview(), b.cview()), 1e-9);

  auto x3 = Matrix<double>::from_view(b.cview());
  hmat::solve_upper_conjtrans_left(h, x3.view());
  la::gemm(Op::ConjTrans, Op::NoTrans, 1.0, u.cview(), x3.cview(), 0.0,
           recon.view());
  EXPECT_LT(rel_diff<double>(recon.cview(), b.cview()), 1e-9);
}

TEST(Htrsm, UpperRightDenseSolve) {
  HmatFixture<double> fx(250);
  auto h = fx.build(hmat_options(kEps));
  ASSERT_EQ(hmat::hlu(h, TruncationParams{kEps, -1}), 0);
  auto lu = h.to_dense();
  Matrix<double> u(250, 250);
  for (index_t j = 0; j < 250; ++j)
    for (index_t i = 0; i <= j; ++i) u(i, j) = lu(i, j);

  auto b = Matrix<double>::random(3, 250, 61);
  auto x = Matrix<double>::from_view(b.cview());
  hmat::solve_upper_right_dense(h, x.view());
  Matrix<double> recon(3, 250);
  la::gemm(Op::NoTrans, Op::NoTrans, 1.0, x.cview(), u.cview(), 0.0,
           recon.view());
  EXPECT_LT(rel_diff<double>(recon.cview(), b.cview()), 1e-9);
}

}  // namespace
}  // namespace hcham
