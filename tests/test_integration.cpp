// Cross-module integration and property tests: randomized sweeps over
// geometry, accuracy, tile size, and scheduler configurations, verifying
// end-to-end invariants that tie all substrates together.
#include <gtest/gtest.h>

#include <tuple>

#include "bem/testcase.hpp"
#include "core/hchameleon.hpp"
#include "hmat_test_utils.hpp"

namespace hcham {
namespace {

using bem::FemBemProblem;
using core::TileHMatrix;
using core::TileHOptions;
using rt::Engine;
using hcham::testing::zdouble;

template <typename T>
double vec_rel_err(const std::vector<T>& a, const std::vector<T>& b) {
  double diff = 0, ref = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff += abs_sq(a[i] - b[i]);
    ref += abs_sq(b[i]);
  }
  return std::sqrt(diff / std::max(ref, 1e-300));
}

/// Property: (A compressed at eps) applied to a vector differs from the
/// exact kernel application by O(eps), for any geometry and tile size.
class TileHAccuracy
    : public ::testing::TestWithParam<std::tuple<double, index_t, double>> {};

TEST_P(TileHAccuracy, MatvecErrorTracksEps) {
  auto [eps, nb, height] = GetParam();
  const index_t n = 600;
  FemBemProblem<double> problem(n, 1.0, height);
  auto gen = [&problem](index_t i, index_t j) { return problem.entry(i, j); };
  Engine engine;
  TileHOptions opts;
  opts.tile_size = nb;
  opts.hmatrix.compression.eps = eps;
  auto a = TileHMatrix<double>::build(engine, problem.points(), gen, opts);

  Rng rng(7);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform(-1, 1);
  std::vector<double> y_h(static_cast<std::size_t>(n), 0.0);
  std::vector<double> y_exact(static_cast<std::size_t>(n), 0.0);
  a.matvec(1.0, x.data(), 0.0, y_h.data());
  for (index_t i = 0; i < n; ++i) {
    double acc = 0;
    for (index_t j = 0; j < n; ++j)
      acc += problem.entry(i, j) * x[static_cast<std::size_t>(j)];
    y_exact[static_cast<std::size_t>(i)] = acc;
  }
  EXPECT_LT(vec_rel_err(y_h, y_exact), 50 * eps)
      << "eps=" << eps << " nb=" << nb << " height=" << height;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TileHAccuracy,
    ::testing::Combine(::testing::Values(1e-3, 1e-6, 1e-9),
                       ::testing::Values(128, 256),
                       ::testing::Values(4.0, 16.0)));

/// Property: solving right after factorizing inverts matvec up to O(eps):
/// x ~ A^-1 (A x).
TEST(Integration, SolveInvertsMatvec) {
  const index_t n = 500;
  FemBemProblem<double> problem(n);
  auto gen = [&problem](index_t i, index_t j) { return problem.entry(i, j); };
  Engine engine({.num_workers = 2});
  TileHOptions opts;
  opts.tile_size = 128;
  opts.hmatrix.compression.eps = 1e-8;
  auto a = TileHMatrix<double>::build(engine, problem.points(), gen, opts);
  auto a2 = TileHMatrix<double>::build(engine, problem.points(), gen, opts);

  Rng rng(13);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform(-1, 1);
  std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  a2.matvec(1.0, x.data(), 0.0, b.data());
  a.factorize(engine);
  la::MatrixView<double> bv(b.data(), n, 1, n);
  a.solve(engine, bv);
  EXPECT_LT(vec_rel_err(b, x), 1e-5);
}

/// Property: the three formats of the solve pipeline agree - Tile-H solve,
/// pure H-matrix solve, and dense solve give the same solution up to the
/// compression accuracy.
TEST(Integration, AllThreeSolversAgree) {
  const index_t n = 400;
  FemBemProblem<double> problem(n);
  auto gen = [&problem](index_t i, index_t j) { return problem.entry(i, j); };

  // Reference: dense.
  auto dense = problem.dense();
  auto x_dense = la::Matrix<double>::random(n, 1, 3);
  la::Matrix<double> rhs(n, 1);
  la::gemm(la::Op::NoTrans, la::Op::NoTrans, 1.0, dense.cview(),
           x_dense.cview(), 0.0, rhs.view());
  la::Matrix<double> x_ref = la::Matrix<double>::from_view(rhs.cview());
  ASSERT_EQ(la::gesv(dense.view(), x_ref.view()), 0);

  // Tile-H.
  Engine engine;
  TileHOptions opts;
  opts.tile_size = 128;
  opts.hmatrix.compression.eps = 1e-8;
  auto th = TileHMatrix<double>::build(engine, problem.points(), gen, opts);
  th.factorize(engine);
  auto b1 = la::Matrix<double>::from_view(rhs.cview());
  th.solve(engine, b1.view());
  EXPECT_LT(hcham::testing::rel_diff<double>(b1.cview(), x_ref.cview()),
            1e-5);

  // Pure H.
  cluster::ClusteringOptions copts;
  copts.leaf_size = 32;
  auto tree = std::make_shared<const cluster::ClusterTree>(
      cluster::ClusterTree::build(problem.points(), copts));
  hmat::HMatrixOptions hopts;
  hopts.compression.eps = 1e-8;
  auto h = hmat::build_hmatrix<double>(tree, tree->root(), tree->root(), gen,
                                       hopts);
  ASSERT_EQ(hmat::hlu(h, rk::TruncationParams{1e-8, -1}), 0);
  la::Matrix<double> b2(n, 1);
  for (index_t i = 0; i < n; ++i) b2(i, 0) = rhs(tree->perm(i), 0);
  hmat::hlu_solve(h, b2.view());
  la::Matrix<double> x_h(n, 1);
  for (index_t i = 0; i < n; ++i) x_h(tree->perm(i), 0) = b2(i, 0);
  EXPECT_LT(hcham::testing::rel_diff<double>(x_h.cview(), x_ref.cview()),
            1e-5);
}

/// Property: product agglomeration P = to_rk(A * B) satisfies
/// P x ~ A (B x) for arbitrary vectors.
TEST(Integration, ProductRkActsLikeComposition) {
  hcham::testing::HmatFixture<double> fx(500, 32, 16.0);
  const auto& root = fx.tree->node(fx.tree->root());
  auto gen = fx.generator();
  auto opts = hcham::testing::hmat_options(1e-8);
  auto a = hmat::build_hmatrix<double>(fx.tree, root.child[0], root.child[0],
                                       gen, opts);
  auto b = hmat::build_hmatrix<double>(fx.tree, root.child[0], root.child[1],
                                       gen, opts);
  auto p = hmat::detail::product_rk(a, b, rk::TruncationParams{1e-8, -1});

  const index_t nc = b.cols();
  const index_t nr = a.rows();
  Rng rng(17);
  std::vector<double> x(static_cast<std::size_t>(nc));
  for (auto& v : x) v = rng.uniform(-1, 1);
  std::vector<double> bx(static_cast<std::size_t>(b.rows()), 0.0);
  hmat::gemv(la::Op::NoTrans, 1.0, b, x.data(), 0.0, bx.data());
  std::vector<double> abx(static_cast<std::size_t>(nr), 0.0);
  hmat::gemv(la::Op::NoTrans, 1.0, a, bx.data(), 0.0, abx.data());
  std::vector<double> px(static_cast<std::size_t>(nr), 0.0);
  p.gemv(la::Op::NoTrans, 1.0, x.data(), px.data());
  EXPECT_LT(vec_rel_err(px, abx), 1e-5);
}

/// The factorization must be bitwise deterministic across runs on one
/// worker and numerically consistent across worker counts.
TEST(Integration, FactorizationDeterminism) {
  const index_t n = 400;
  FemBemProblem<double> problem(n);
  auto gen = [&problem](index_t i, index_t j) { return problem.entry(i, j); };
  TileHOptions opts;
  opts.tile_size = 128;
  opts.hmatrix.compression.eps = 1e-6;

  auto run = [&](int workers) {
    Engine engine({.num_workers = workers});
    auto a = TileHMatrix<double>::build(engine, problem.points(), gen, opts);
    a.factorize(engine);
    return a.to_dense_original();
  };
  auto f1 = run(1);
  auto f1b = run(1);
  EXPECT_EQ(hcham::testing::rel_diff<double>(f1.cview(), f1b.cview()), 0.0);
  auto f4 = run(4);
  // Task order can permute rounded additions: equal up to truncation noise.
  EXPECT_LT(hcham::testing::rel_diff<double>(f4.cview(), f1.cview()), 1e-8);
}

/// Failure injection: a singular diagonal tile must surface as an Error
/// from factorize(), not crash the worker pool.
TEST(Integration, SingularMatrixSurfacesAsError) {
  const index_t n = 256;
  auto mesh = bem::make_cylinder(n);
  auto ones = [](index_t, index_t) { return 1.0; };  // rank-1: singular
  Engine engine({.num_workers = 2});
  TileHOptions opts;
  opts.tile_size = 64;
  opts.hmatrix.admissibility = cluster::AdmissibilityCondition::none();
  auto a = TileHMatrix<double>::build(engine, mesh.points, ones, opts);
  EXPECT_THROW(a.factorize(engine), Error);
}

/// Compression must monotonically improve (ratio shrink) as eps loosens.
TEST(Integration, CompressionMonotoneInEps) {
  const index_t n = 1500;
  FemBemProblem<double> problem(n);
  auto gen = [&problem](index_t i, index_t j) { return problem.entry(i, j); };
  double prev = 2.0;
  for (double eps : {1e-10, 1e-6, 1e-2}) {
    Engine engine;
    TileHOptions opts;
    opts.tile_size = 256;
    opts.hmatrix.compression.eps = eps;
    auto a = TileHMatrix<double>::build(engine, problem.points(), gen, opts);
    EXPECT_LE(a.compression_ratio(), prev + 1e-12);
    prev = a.compression_ratio();
  }
}

TEST(Integration, ComplexHelmholtzEndToEnd) {
  const index_t n = 400;
  FemBemProblem<zdouble> problem(n);
  auto gen = [&problem](index_t i, index_t j) { return problem.entry(i, j); };
  Engine engine({.num_workers = 3,
                 .policy = rt::SchedulerPolicy::LocalityWorkStealing});
  TileHOptions opts;
  opts.tile_size = 128;
  opts.hmatrix.compression.eps = 1e-6;
  auto a = TileHMatrix<zdouble>::build(engine, problem.points(), gen, opts);
  auto a2 = TileHMatrix<zdouble>::build(engine, problem.points(), gen, opts);

  // Plane-wave RHS as in the example application.
  std::vector<zdouble> b(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    b[static_cast<std::size_t>(i)] = std::exp(zdouble(
        0.0,
        problem.wavenumber() * problem.points()[static_cast<std::size_t>(i)].z));
  auto b0 = b;

  a.factorize(engine);
  la::MatrixView<zdouble> bv(b.data(), n, 1, n);
  a.solve(engine, bv);

  // Residual through the unfactorized operator: r = b0 - A x.
  std::vector<zdouble> r = b0;
  a2.matvec(zdouble(-1), b.data(), zdouble(1), r.data());
  double rn = 0, bn = 0;
  for (index_t i = 0; i < n; ++i) {
    rn += abs_sq(r[static_cast<std::size_t>(i)]);
    bn += abs_sq(b0[static_cast<std::size_t>(i)]);
  }
  EXPECT_LT(std::sqrt(rn / bn), 1e-4);
}

}  // namespace
}  // namespace hcham
