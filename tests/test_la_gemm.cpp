// GEMM / GEMV correctness against a naive reference, for real and complex
// scalars and all transpose combinations (parameterized sweep).
#include <gtest/gtest.h>

#include <tuple>

#include "la/la.hpp"
#include "test_utils.hpp"

namespace hcham {
namespace {

using la::ConstMatrixView;
using la::Matrix;
using la::Op;
using hcham::testing::reference_gemm;
using hcham::testing::rel_diff;
using hcham::testing::zdouble;

template <typename T>
void check_gemm(Op opa, Op opb, index_t m, index_t n, index_t k, T alpha,
                T beta, std::uint64_t seed) {
  const index_t am = (opa == Op::NoTrans) ? m : k;
  const index_t an = (opa == Op::NoTrans) ? k : m;
  const index_t bm = (opb == Op::NoTrans) ? k : n;
  const index_t bn = (opb == Op::NoTrans) ? n : k;
  auto a = Matrix<T>::random(am, an, seed);
  auto b = Matrix<T>::random(bm, bn, seed + 1);
  auto c = Matrix<T>::random(m, n, seed + 2);
  auto c_ref = Matrix<T>::from_view(c.cview());

  la::gemm(opa, opb, alpha, a.cview(), b.cview(), beta, c.view());
  reference_gemm(opa, opb, alpha, a.cview(), b.cview(), beta, c_ref.view());
  EXPECT_LT(rel_diff<T>(c.cview(), c_ref.cview()), 1e-13)
      << "ops " << la::to_string(opa) << la::to_string(opb) << " m=" << m
      << " n=" << n << " k=" << k;
}

class GemmOps : public ::testing::TestWithParam<std::tuple<Op, Op>> {};

TEST_P(GemmOps, RealDoubleMatchesReference) {
  auto [opa, opb] = GetParam();
  check_gemm<double>(opa, opb, 17, 13, 9, 1.0, 0.0, 100);
  check_gemm<double>(opa, opb, 8, 21, 15, -0.5, 2.0, 200);
  check_gemm<double>(opa, opb, 1, 1, 1, 3.0, 1.0, 300);
}

TEST_P(GemmOps, ComplexDoubleMatchesReference) {
  auto [opa, opb] = GetParam();
  check_gemm<zdouble>(opa, opb, 11, 7, 14, zdouble(1, -2), zdouble(0.5, 0.5),
                      400);
  check_gemm<zdouble>(opa, opb, 5, 19, 3, zdouble(0, 1), zdouble(), 500);
}

INSTANTIATE_TEST_SUITE_P(
    AllOpCombos, GemmOps,
    ::testing::Combine(::testing::Values(Op::NoTrans, Op::Trans,
                                         Op::ConjTrans),
                       ::testing::Values(Op::NoTrans, Op::Trans,
                                         Op::ConjTrans)));

TEST(Gemm, LargeKBlockedPathMatches) {
  // k > 128 exercises the cache-blocking loop.
  check_gemm<double>(Op::NoTrans, Op::NoTrans, 31, 17, 300, 1.0, 1.0, 600);
}

TEST(Gemm, ZeroAlphaOnlyScalesC) {
  auto c = Matrix<double>::random(6, 6, 1);
  auto expected = Matrix<double>::from_view(c.cview());
  la::scal(2.0, expected.view());
  auto a = Matrix<double>::random(6, 6, 2);
  la::gemm(Op::NoTrans, Op::NoTrans, 0.0, a.cview(), a.cview(), 2.0, c.view());
  EXPECT_EQ(rel_diff<double>(c.cview(), expected.cview()), 0.0);
}

TEST(Gemm, BetaZeroIgnoresGarbageInC) {
  auto a = Matrix<double>::random(4, 3, 3);
  auto b = Matrix<double>::random(3, 5, 4);
  Matrix<double> c(4, 5);
  c.fill(std::numeric_limits<double>::quiet_NaN());
  la::gemm(Op::NoTrans, Op::NoTrans, 1.0, a.cview(), b.cview(), 0.0, c.view());
  Matrix<double> c_ref(4, 5);
  reference_gemm<double>(Op::NoTrans, Op::NoTrans, 1.0, a.cview(), b.cview(),
                         0.0, c_ref.view());
  EXPECT_LT(rel_diff<double>(c.cview(), c_ref.cview()), 1e-14);
}

TEST(Gemm, DimensionMismatchThrows) {
  Matrix<double> a(3, 4), b(5, 2), c(3, 2);
  EXPECT_THROW(la::gemm(Op::NoTrans, Op::NoTrans, 1.0, a.cview(), b.cview(),
                        0.0, c.view()),
               Error);
}

TEST(Gemm, OnViewsOfLargerMatrices) {
  auto big = Matrix<double>::random(20, 20, 9);
  auto a = big.block(0, 0, 6, 4);
  auto b = big.block(6, 6, 4, 5);
  Matrix<double> c(6, 5), c_ref(6, 5);
  la::gemm<double>(Op::NoTrans, Op::NoTrans, 1.0, a, b, 0.0, c.view());
  reference_gemm<double>(Op::NoTrans, Op::NoTrans, 1.0, a, b, 0.0,
                         c_ref.view());
  EXPECT_LT(rel_diff<double>(c.cview(), c_ref.cview()), 1e-14);
}

template <typename T>
void check_gemv(la::Op op, index_t m, index_t n, std::uint64_t seed) {
  auto a = Matrix<T>::random(m, n, seed);
  const index_t xd = la::op_cols(a.cview(), op);
  const index_t yd = la::op_rows(a.cview(), op);
  auto x = Matrix<T>::random(xd, 1, seed + 1);
  auto y = Matrix<T>::random(yd, 1, seed + 2);
  auto y_ref = Matrix<T>::from_view(y.cview());
  la::gemv(op, T{2}, a.cview(), x.data(), T{-1}, y.data());
  reference_gemm(op, Op::NoTrans, T{2}, a.cview(), x.cview(), T{-1},
                 y_ref.view());
  EXPECT_LT(rel_diff<T>(y.cview(), y_ref.cview()), 1e-13);
}

TEST(Gemv, AllOpsRealAndComplex) {
  for (auto op : {Op::NoTrans, Op::Trans, Op::ConjTrans}) {
    check_gemv<double>(op, 15, 8, 700);
    check_gemv<zdouble>(op, 9, 16, 800);
  }
}

TEST(Axpy, AccumulatesScaledMatrix) {
  auto a = Matrix<double>::random(5, 5, 1);
  auto b = Matrix<double>::random(5, 5, 2);
  auto expect = Matrix<double>(5, 5);
  for (index_t j = 0; j < 5; ++j)
    for (index_t i = 0; i < 5; ++i) expect(i, j) = b(i, j) - 3.0 * a(i, j);
  la::axpy(-3.0, a.cview(), b.view());
  EXPECT_LT(rel_diff<double>(b.cview(), expect.cview()), 1e-15);
}

}  // namespace
}  // namespace hcham
