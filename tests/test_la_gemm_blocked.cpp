// Kernel-oracle suite for the packed register-tiled GEMM engine
// (la/gemm_blocked.hpp): gemm_blocked is checked entry-by-entry against the
// straightforward reference kernel across all nine op(A)/op(B) combinations,
// edge shapes straddling the microkernel tile (1, mr-1, mr, mr+1, ...),
// alpha/beta in {0, 1, -1, 0.5}, and strided sub-views. Tolerances scale
// with the reduction length k. Runs under the "la" CTest label so the
// sanitizer CI jobs pick it up.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/rng.hpp"
#include "la/gemm.hpp"
#include "la/gemm_blocked.hpp"
#include "la/matrix.hpp"
#include "la/view.hpp"
#include "test_utils.hpp"

namespace hcham::la {
namespace {

using ::hcham::testing::reference_gemm;

constexpr Op kOps[3] = {Op::NoTrans, Op::Trans, Op::ConjTrans};

const char* op_name(Op op) {
  switch (op) {
    case Op::NoTrans: return "N";
    case Op::Trans: return "T";
    case Op::ConjTrans: return "C";
  }
  return "?";
}

template <typename T>
void fill_random(Rng& rng, MatrixView<T> a) {
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) a(i, j) = rng.scalar<T>();
}

/// op-dependent storage shape for a factor that contributes (rows x cols)
/// to the product.
inline std::pair<index_t, index_t> storage_shape(Op op, index_t rows,
                                                 index_t cols) {
  return op == Op::NoTrans ? std::pair{rows, cols} : std::pair{cols, rows};
}

/// Max |difference| between the blocked result and the reference, scaled by
/// the expected rounding envelope of a length-k reduction.
template <typename T>
double scaled_error(ConstMatrixView<T> got, ConstMatrixView<T> want,
                    index_t k) {
  using R = real_t<T>;
  const double eps = static_cast<double>(std::numeric_limits<R>::epsilon());
  const double envelope = eps * static_cast<double>(std::max<index_t>(k, 1));
  double worst = 0.0;
  for (index_t j = 0; j < got.cols(); ++j)
    for (index_t i = 0; i < got.rows(); ++i) {
      const double d = static_cast<double>(abs_val(got(i, j) - want(i, j)));
      worst = std::max(worst, d / envelope);
    }
  return worst;  // units of k*eps; anything < ~50 is a rounding difference
}

/// One oracle comparison: C_blocked vs C_reference for the given config.
template <typename T>
void check_case(Rng& rng, Op opa, Op opb, index_t m, index_t n, index_t k,
                T alpha, T beta) {
  const auto [am, an] = storage_shape(opa, m, k);
  const auto [bm, bn] = storage_shape(opb, k, n);
  Matrix<T> a(am, an), b(bm, bn), c0(m, n);
  fill_random(rng, a.view());
  fill_random(rng, b.view());
  fill_random(rng, c0.view());

  Matrix<T> got = c0;
  Matrix<T> want = c0;
  gemm_blocked<T>(opa, opb, alpha, a.cview(), b.cview(), beta, got.view());
  reference_gemm<T>(opa, opb, alpha, a.cview(), b.cview(), beta, want.view());

  const double err = scaled_error<T>(got.cview(), want.cview(), k);
  EXPECT_LT(err, 50.0) << "op(A)=" << op_name(opa) << " op(B)=" << op_name(opb)
                       << " m=" << m << " n=" << n << " k=" << k
                       << " alpha=" << abs_val(alpha)
                       << " beta=" << abs_val(beta) << " (error in k*eps units)";
}

template <typename T>
class GemmBlockedOracle : public ::testing::Test {};

using Scalars =
    ::testing::Types<float, double, std::complex<float>, std::complex<double>>;
TYPED_TEST_SUITE(GemmBlockedOracle, Scalars);

/// All 9 op combos on the full cross product of microkernel-straddling edge
/// sizes {1, mr-1, mr, mr+1}, with alpha/beta cycling through
/// {0, 1, -1, 0.5} x {0, 1, -1, 0.5}.
TYPED_TEST(GemmBlockedOracle, OpCombosMicroTileEdges) {
  using T = TypeParam;
  constexpr index_t mr = GemmMicroShape<T>::mr;
  const index_t sizes[] = {1, mr - 1, mr, mr + 1};
  const T coefs[] = {T{0}, T{1}, T{-1}, T{0.5}};
  Rng rng(2024);
  int tick = 0;
  for (Op opa : kOps)
    for (Op opb : kOps)
      for (index_t m : sizes)
        for (index_t n : sizes)
          for (index_t k : sizes) {
            const T alpha = coefs[tick % 4];
            const T beta = coefs[(tick / 4) % 4];
            ++tick;
            check_case<T>(rng, opa, opb, m, n, k, alpha, beta);
          }
}

/// All 9 op combos on cache-blocking-relevant shapes (crossing kc/mc
/// boundaries, extreme aspect ratios) with nonzero alpha/beta.
TYPED_TEST(GemmBlockedOracle, OpCombosLargeAndSkinny) {
  using T = TypeParam;
  struct Shape {
    index_t m, n, k;
  };
  const Shape shapes[] = {{64, 64, 64},  {257, 257, 257}, {257, 1, 64},
                          {1, 257, 64},  {64, 257, 257},  {257, 64, 1},
                          {129, 65, 385}};
  const T coefs[] = {T{1}, T{-1}, T{0.5}};
  Rng rng(4096);
  int tick = 0;
  for (Op opa : kOps)
    for (Op opb : kOps)
      for (const Shape& s : shapes) {
        const T alpha = coefs[tick % 3];
        const T beta = coefs[(tick / 3) % 3];
        ++tick;
        check_case<T>(rng, opa, opb, s.m, s.n, s.k, alpha, beta);
      }
}

/// alpha/beta full cross product {0, 1, -1, 0.5}^2 on a mid-size problem.
TYPED_TEST(GemmBlockedOracle, AlphaBetaCross) {
  using T = TypeParam;
  const T coefs[] = {T{0}, T{1}, T{-1}, T{0.5}};
  Rng rng(7);
  for (T alpha : coefs)
    for (T beta : coefs)
      check_case<T>(rng, Op::NoTrans, Op::NoTrans, 70, 53, 91, alpha, beta);
}

/// beta = 0 must overwrite C, not scale it: NaN garbage in C must vanish.
TYPED_TEST(GemmBlockedOracle, BetaZeroOverwritesNan) {
  using T = TypeParam;
  using R = real_t<T>;
  Rng rng(11);
  Matrix<T> a(40, 24), b(24, 33), c(40, 33);
  fill_random(rng, a.view());
  fill_random(rng, b.view());
  const R qnan = std::numeric_limits<R>::quiet_NaN();
  for (index_t j = 0; j < c.cols(); ++j)
    for (index_t i = 0; i < c.rows(); ++i) c(i, j) = T(qnan);
  gemm_blocked<T>(Op::NoTrans, Op::NoTrans, T{1}, a.cview(), b.cview(), T{},
                  c.view());
  Matrix<T> want(40, 33);
  want.set_zero();
  reference_gemm<T>(Op::NoTrans, Op::NoTrans, T{1}, a.cview(), b.cview(), T{},
                    want.view());
  for (index_t j = 0; j < c.cols(); ++j)
    for (index_t i = 0; i < c.rows(); ++i)
      ASSERT_FALSE(std::isnan(static_cast<double>(abs_val(c(i, j)))))
          << "NaN leaked through beta=0 at (" << i << ", " << j << ")";
  EXPECT_LT(scaled_error<T>(c.cview(), want.cview(), 24), 50.0);
}

/// Strided sub-views: operands and C are interior blocks of larger parents
/// (leading dimension > rows), including row/column offsets.
TYPED_TEST(GemmBlockedOracle, StridedSubViews) {
  using T = TypeParam;
  Rng rng(31);
  const index_t m = 77, n = 45, k = 101;
  for (Op opa : kOps)
    for (Op opb : kOps) {
      const auto [am, an] = storage_shape(opa, m, k);
      const auto [bm, bn] = storage_shape(opb, k, n);
      Matrix<T> pa(am + 13, an + 5), pb(bm + 7, bn + 9), pc(m + 11, n + 3);
      fill_random(rng, pa.view());
      fill_random(rng, pb.view());
      fill_random(rng, pc.view());
      Matrix<T> pc2 = pc;
      ConstMatrixView<T> a = std::as_const(pa).block(13, 2, am, an);
      ConstMatrixView<T> b = std::as_const(pb).block(3, 9, bm, bn);
      gemm_blocked<T>(opa, opb, T{0.5}, a, b, T{-1},
                      pc.block(11, 1, m, n));
      reference_gemm<T>(opa, opb, T{0.5}, a, b, T{-1},
                        pc2.block(11, 1, m, n));
      // The parent outside the written block must be untouched.
      for (index_t j = 0; j < pc.cols(); ++j)
        for (index_t i = 0; i < pc.rows(); ++i) {
          const bool inside = i >= 11 && i < 11 + m && j >= 1 && j < 1 + n;
          if (!inside)
            ASSERT_EQ(pc(i, j), pc2(i, j))
                << "write outside the C block at (" << i << ", " << j << ")";
        }
      EXPECT_LT(scaled_error<T>(std::as_const(pc).block(11, 1, m, n),
                                std::as_const(pc2).block(11, 1, m, n), k),
                50.0)
          << "op(A)=" << op_name(opa) << " op(B)=" << op_name(opb);
    }
}

/// The public gemm() dispatcher must agree with the reference regardless of
/// which path it picks, including right at the dispatch threshold.
TYPED_TEST(GemmBlockedOracle, DispatcherMatchesReference) {
  using T = TypeParam;
  constexpr index_t mr = GemmMicroShape<T>::mr;
  constexpr index_t nr = GemmMicroShape<T>::nr;
  Rng rng(99);
  struct Shape {
    index_t m, n, k;
  };
  const Shape shapes[] = {{mr - 1, nr, 64},  // below the shape guard
                          {mr, nr, 8},       // shape-eligible, tiny flops
                          {96, 96, 96},      // blocked
                          {5, 3, 2}};        // tiny: reference
  for (const Shape& s : shapes) {
    Matrix<T> a(s.m, s.k), b(s.k, s.n), c(s.m, s.n), c2;
    fill_random(rng, a.view());
    fill_random(rng, b.view());
    fill_random(rng, c.view());
    c2 = c;
    gemm<T>(Op::NoTrans, Op::NoTrans, T{1}, a.cview(), b.cview(), T{0.5},
            c.view());
    reference_gemm<T>(Op::NoTrans, Op::NoTrans, T{1}, a.cview(), b.cview(),
                      T{0.5}, c2.view());
    EXPECT_LT(scaled_error<T>(c.cview(), c2.cview(), s.k), 50.0)
        << "m=" << s.m << " n=" << s.n << " k=" << s.k;
  }
}

/// gemm_prefers_blocked: shape guards and the flops threshold.
TEST(GemmDispatch, ThresholdGuards) {
  constexpr index_t mr = GemmMicroShape<double>::mr;
  constexpr index_t nr = GemmMicroShape<double>::nr;
  EXPECT_FALSE(gemm_prefers_blocked<double>(mr - 1, 1024, 1024));
  EXPECT_FALSE(gemm_prefers_blocked<double>(1024, nr - 1, 1024));
  EXPECT_FALSE(gemm_prefers_blocked<double>(1024, 1024, 7));
  EXPECT_TRUE(gemm_prefers_blocked<double>(256, 256, 256));
  // Tiny products stay on the reference kernel even with valid shapes.
  EXPECT_FALSE(gemm_prefers_blocked<double>(mr, nr, 8));
}

}  // namespace
}  // namespace hcham::la
