// LU factorization tests: reconstruction P*A = L*U, solves, pivoting
// behaviour, the unpivoted variant, and failure reporting.
#include <gtest/gtest.h>

#include <vector>

#include "la/la.hpp"
#include "test_utils.hpp"

namespace hcham {
namespace {

using la::ConstMatrixView;
using la::Matrix;
using la::Op;
using hcham::testing::diagonally_dominant;
using hcham::testing::rel_diff;
using hcham::testing::zdouble;

/// Reconstruct L * U from a factored square matrix (unit lower assumed).
template <typename T>
Matrix<T> multiply_lu(ConstMatrixView<T> lu) {
  const index_t m = lu.rows();
  const index_t n = lu.cols();
  const index_t k = std::min(m, n);
  Matrix<T> l(m, k), u(k, n);
  for (index_t j = 0; j < k; ++j) {
    l(j, j) = T{1};
    for (index_t i = j + 1; i < m; ++i) l(i, j) = lu(i, j);
  }
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i <= std::min(j, k - 1); ++i) u(i, j) = lu(i, j);
  Matrix<T> prod(m, n);
  la::gemm(Op::NoTrans, Op::NoTrans, T{1}, l.cview(), u.cview(), T{},
           prod.view());
  return prod;
}

/// Apply the recorded interchanges to a fresh copy of A, giving P*A.
template <typename T>
Matrix<T> permute_rows(ConstMatrixView<T> a, const std::vector<index_t>& ipiv) {
  Matrix<T> pa = Matrix<T>::from_view(a);
  la::laswp(pa.view(), ipiv.data(), 0, static_cast<index_t>(ipiv.size()));
  return pa;
}

template <typename T>
void check_factorization(index_t n, std::uint64_t seed) {
  auto a = Matrix<T>::random(n, n, seed);
  auto lu = Matrix<T>::from_view(a.cview());
  std::vector<index_t> ipiv(static_cast<std::size_t>(n));
  ASSERT_EQ(la::getrf(lu.view(), ipiv.data()), 0);
  auto prod = multiply_lu<T>(lu.cview());
  auto pa = permute_rows<T>(a.cview(), ipiv);
  EXPECT_LT(rel_diff<T>(prod.cview(), pa.cview()), 1e-12) << "n=" << n;
}

TEST(Getrf, ReconstructsRandomRealMatrices) {
  for (index_t n : {1, 2, 5, 17, 64, 65, 130}) {
    check_factorization<double>(n, 100 + static_cast<std::uint64_t>(n));
  }
}

TEST(Getrf, ReconstructsComplexMatrices) {
  for (index_t n : {3, 31, 100}) {
    check_factorization<zdouble>(n, 500 + static_cast<std::uint64_t>(n));
  }
}

TEST(Getrf, RectangularTallAndWide) {
  for (auto [m, n] : {std::pair<index_t, index_t>{40, 24},
                      std::pair<index_t, index_t>{24, 40}}) {
    auto a = Matrix<double>::random(m, n, 77);
    auto lu = Matrix<double>::from_view(a.cview());
    std::vector<index_t> ipiv(static_cast<std::size_t>(std::min(m, n)));
    ASSERT_EQ(la::getrf(lu.view(), ipiv.data()), 0);
    auto prod = multiply_lu<double>(lu.cview());
    auto pa = permute_rows<double>(a.cview(), ipiv);
    EXPECT_LT(rel_diff<double>(prod.cview(), pa.cview()), 1e-12);
  }
}

TEST(Getrf, PivotsOnZeroLeadingEntry) {
  Matrix<double> a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 2.0;
  a(1, 1) = 3.0;
  std::vector<index_t> ipiv(2);
  EXPECT_EQ(la::getrf(a.view(), ipiv.data()), 0);
  EXPECT_EQ(ipiv[0], 1);  // swapped with row 1
}

TEST(Getrf, ReportsExactSingularity) {
  Matrix<double> a(3, 3);  // all zeros
  std::vector<index_t> ipiv(3);
  EXPECT_EQ(la::getrf(a.view(), ipiv.data()), 1);
}

TEST(GetrfNopiv, ReconstructsDiagonallyDominant) {
  for (index_t n : {1, 8, 64, 100}) {
    auto a = diagonally_dominant<double>(n, 900 + static_cast<std::uint64_t>(n));
    auto lu = Matrix<double>::from_view(a.cview());
    ASSERT_EQ(la::getrf_nopiv(lu.view()), 0);
    auto prod = multiply_lu<double>(lu.cview());
    EXPECT_LT(rel_diff<double>(prod.cview(), a.cview()), 1e-12);
  }
}

TEST(GetrfNopiv, ComplexDiagonallyDominant) {
  auto a = diagonally_dominant<zdouble>(50, 1234);
  auto lu = Matrix<zdouble>::from_view(a.cview());
  ASSERT_EQ(la::getrf_nopiv(lu.view()), 0);
  auto prod = multiply_lu<zdouble>(lu.cview());
  EXPECT_LT(rel_diff<zdouble>(prod.cview(), a.cview()), 1e-12);
}

TEST(GetrfNopiv, FailsOnZeroPivot) {
  Matrix<double> a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 2.0;
  a(1, 1) = 3.0;
  EXPECT_EQ(la::getrf_nopiv(a.view()), 1);
}

template <typename T>
void check_solve(Op op, index_t n, index_t nrhs, std::uint64_t seed) {
  auto a = Matrix<T>::random(n, n, seed);
  auto x_true = Matrix<T>::random(n, nrhs, seed + 1);
  Matrix<T> b(n, nrhs);
  la::gemm(op, Op::NoTrans, T{1}, a.cview(), x_true.cview(), T{}, b.view());
  auto lu = Matrix<T>::from_view(a.cview());
  std::vector<index_t> ipiv(static_cast<std::size_t>(n));
  ASSERT_EQ(la::getrf(lu.view(), ipiv.data()), 0);
  la::getrs(op, lu.cview(), ipiv.data(), b.view());
  EXPECT_LT(rel_diff<T>(b.cview(), x_true.cview()), 1e-10)
      << "op=" << la::to_string(op);
}

TEST(Getrs, SolvesAllOpsReal) {
  for (auto op : {Op::NoTrans, Op::Trans, Op::ConjTrans})
    check_solve<double>(op, 60, 4, 2000);
}

TEST(Getrs, SolvesAllOpsComplex) {
  for (auto op : {Op::NoTrans, Op::Trans, Op::ConjTrans})
    check_solve<zdouble>(op, 40, 3, 3000);
}

TEST(GetrsNopiv, SolvesAfterUnpivotedFactorization) {
  auto a = diagonally_dominant<double>(48, 4000);
  auto x_true = Matrix<double>::random(48, 2, 4001);
  Matrix<double> b(48, 2);
  la::gemm(Op::NoTrans, Op::NoTrans, 1.0, a.cview(), x_true.cview(), 0.0,
           b.view());
  auto lu = Matrix<double>::from_view(a.cview());
  ASSERT_EQ(la::getrf_nopiv(lu.view()), 0);
  la::getrs_nopiv(Op::NoTrans, lu.cview(), b.view());
  EXPECT_LT(rel_diff<double>(b.cview(), x_true.cview()), 1e-10);
}

TEST(Gesv, FactorAndSolveDriver) {
  auto a = Matrix<double>::random(30, 30, 5000);
  auto x_true = Matrix<double>::random(30, 1, 5001);
  Matrix<double> b(30, 1);
  la::gemm(Op::NoTrans, Op::NoTrans, 1.0, a.cview(), x_true.cview(), 0.0,
           b.view());
  EXPECT_EQ(la::gesv(a.view(), b.view()), 0);
  EXPECT_LT(rel_diff<double>(b.cview(), x_true.cview()), 1e-10);
}

TEST(Laswp, RoundTripWithReverse) {
  auto a = Matrix<double>::random(6, 3, 6000);
  auto orig = Matrix<double>::from_view(a.cview());
  std::vector<index_t> ipiv = {3, 4, 2, 5, 4, 5};
  la::laswp(a.view(), ipiv.data(), 0, 6);
  // Undo in reverse order.
  for (index_t k = 5; k >= 0; --k) {
    const index_t p = ipiv[static_cast<std::size_t>(k)];
    if (p != k)
      for (index_t j = 0; j < 3; ++j) std::swap(a(k, j), a(p, j));
  }
  EXPECT_EQ(rel_diff<double>(a.cview(), orig.cview()), 0.0);
}

}  // namespace
}  // namespace hcham
