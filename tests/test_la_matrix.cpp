// Unit tests for the dense Matrix container and views.
#include <gtest/gtest.h>

#include "la/la.hpp"
#include "test_utils.hpp"

namespace hcham {
namespace {

using la::ConstMatrixView;
using la::Matrix;
using la::MatrixView;
using hcham::testing::zdouble;

TEST(Matrix, DefaultIsEmpty) {
  Matrix<double> m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ConstructionZeroInitializes) {
  Matrix<double> m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 3; ++i) EXPECT_EQ(m(i, j), 0.0);
}

TEST(Matrix, ColumnMajorLayout) {
  Matrix<double> m(2, 3);
  m(0, 0) = 1;
  m(1, 0) = 2;
  m(0, 1) = 3;
  EXPECT_EQ(m.data()[0], 1);
  EXPECT_EQ(m.data()[1], 2);
  EXPECT_EQ(m.data()[2], 3);
}

TEST(Matrix, IdentityAndFill) {
  Matrix<double> m(3, 3);
  m.set_identity();
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 3; ++i) EXPECT_EQ(m(i, j), i == j ? 1.0 : 0.0);
  m.fill(7.5);
  EXPECT_EQ(m(2, 1), 7.5);
}

TEST(Matrix, RectangularIdentity) {
  Matrix<double> m(2, 4);
  m.set_identity();
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(1, 1), 1.0);
  EXPECT_EQ(m(1, 3), 0.0);
}

TEST(Matrix, RandomIsDeterministic) {
  auto a = Matrix<double>::random(5, 5, 42);
  auto b = Matrix<double>::random(5, 5, 42);
  auto c = Matrix<double>::random(5, 5, 43);
  EXPECT_EQ(hcham::testing::rel_diff<double>(a.cview(), b.cview()), 0.0);
  EXPECT_GT(hcham::testing::rel_diff<double>(a.cview(), c.cview()), 0.0);
}

TEST(Matrix, RandomEntriesInRange) {
  auto a = Matrix<zdouble>::random(10, 10, 7);
  for (index_t j = 0; j < 10; ++j) {
    for (index_t i = 0; i < 10; ++i) {
      EXPECT_LT(std::abs(a(i, j).real()), 1.0);
      EXPECT_LT(std::abs(a(i, j).imag()), 1.0);
    }
  }
}

TEST(MatrixView, BlockAddressesSubmatrix) {
  auto m = Matrix<double>::random(6, 6, 1);
  MatrixView<double> blk = m.block(1, 2, 3, 2);
  EXPECT_EQ(blk.rows(), 3);
  EXPECT_EQ(blk.cols(), 2);
  EXPECT_EQ(blk.ld(), 6);
  EXPECT_EQ(blk(0, 0), m(1, 2));
  EXPECT_EQ(blk(2, 1), m(3, 3));
  blk(1, 1) = 99.0;
  EXPECT_EQ(m(2, 3), 99.0);
}

TEST(MatrixView, NestedBlocks) {
  auto m = Matrix<double>::random(8, 8, 2);
  auto outer = m.block(2, 2, 5, 5);
  auto inner = outer.block(1, 1, 2, 2);
  EXPECT_EQ(inner(0, 0), m(3, 3));
}

TEST(MatrixView, CopyBetweenStrides) {
  auto m = Matrix<double>::random(6, 6, 3);
  Matrix<double> dst(3, 3);
  la::copy<double>(m.block(2, 1, 3, 3), dst.view());
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 3; ++i) EXPECT_EQ(dst(i, j), m(2 + i, 1 + j));
}

TEST(MatrixView, CopyShapeMismatchThrows) {
  Matrix<double> a(2, 3), b(3, 2);
  EXPECT_THROW(la::copy<double>(a.cview(), b.view()), Error);
}

TEST(Matrix, FromView) {
  auto m = Matrix<double>::random(5, 4, 9);
  auto copy = Matrix<double>::from_view(m.block(1, 1, 3, 2));
  EXPECT_EQ(copy.rows(), 3);
  EXPECT_EQ(copy.cols(), 2);
  EXPECT_EQ(copy(0, 0), m(1, 1));
}

TEST(Matrix, ResetDiscardsAndZeroes) {
  auto m = Matrix<double>::random(3, 3, 5);
  m.reset(4, 2);
  EXPECT_EQ(m.rows(), 4);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_EQ(m(3, 1), 0.0);
}

TEST(Norms, FrobeniusMatchesHandComputed) {
  Matrix<double> m(2, 2);
  m(0, 0) = 3;
  m(1, 1) = 4;
  EXPECT_DOUBLE_EQ(la::norm_fro(m.cview()), 5.0);
}

TEST(Norms, FrobeniusComplex) {
  Matrix<zdouble> m(1, 1);
  m(0, 0) = zdouble(3, 4);
  EXPECT_DOUBLE_EQ(la::norm_fro(m.cview()), 5.0);
}

TEST(Norms, MaxNorm) {
  auto m = Matrix<double>::random(4, 4, 11);
  m(2, 3) = -8.0;
  EXPECT_DOUBLE_EQ(la::norm_max(m.cview()), 8.0);
}

TEST(Norms, ScalingAvoidsOverflow) {
  Matrix<double> m(2, 1);
  m(0, 0) = 1e200;
  m(1, 0) = 1e200;
  EXPECT_NEAR(la::norm_fro(m.cview()) / (std::sqrt(2.0) * 1e200), 1.0, 1e-14);
}

TEST(Norms, DotcConjugatesFirstArgument) {
  zdouble x[2] = {zdouble(0, 1), zdouble(1, 0)};
  zdouble y[2] = {zdouble(0, 1), zdouble(2, 0)};
  const zdouble d = la::dotc<zdouble>(2, x, y);
  EXPECT_DOUBLE_EQ(d.real(), 3.0);
  EXPECT_DOUBLE_EQ(d.imag(), 0.0);
}

}  // namespace
}  // namespace hcham
