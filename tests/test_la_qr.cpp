// Householder QR tests: reconstruction, orthogonality, shapes, complex case.
#include <gtest/gtest.h>

#include <vector>

#include "la/la.hpp"
#include "test_utils.hpp"

namespace hcham {
namespace {

using la::ConstMatrixView;
using la::Matrix;
using la::Op;
using hcham::testing::rel_diff;
using hcham::testing::zdouble;

template <typename T>
void check_qr(index_t m, index_t n, std::uint64_t seed) {
  auto a = Matrix<T>::random(m, n, seed);
  Matrix<T> q, r;
  la::qr_thin<T>(a.cview(), q, r);
  const index_t k = std::min(m, n);
  ASSERT_EQ(q.rows(), m);
  ASSERT_EQ(q.cols(), k);
  ASSERT_EQ(r.rows(), k);
  ASSERT_EQ(r.cols(), n);

  // Q^H Q = I.
  Matrix<T> qhq(k, k);
  la::gemm(Op::ConjTrans, Op::NoTrans, T{1}, q.cview(), q.cview(), T{},
           qhq.view());
  auto eye = Matrix<T>::identity(k);
  EXPECT_LT(rel_diff<T>(qhq.cview(), eye.cview()), 1e-13)
      << "m=" << m << " n=" << n;

  // Q R = A.
  Matrix<T> qr(m, n);
  la::gemm(Op::NoTrans, Op::NoTrans, T{1}, q.cview(), r.cview(), T{},
           qr.view());
  EXPECT_LT(rel_diff<T>(qr.cview(), a.cview()), 1e-13)
      << "m=" << m << " n=" << n;

  // R upper triangular.
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j + 1; i < k; ++i) EXPECT_EQ(r(i, j), T{});
}

TEST(Qr, TallRealMatrices) {
  check_qr<double>(20, 5, 1);
  check_qr<double>(100, 17, 2);
  check_qr<double>(7, 7, 3);
}

TEST(Qr, WideRealMatrices) {
  check_qr<double>(5, 20, 4);
  check_qr<double>(3, 50, 5);
}

TEST(Qr, DegenerateShapes) {
  check_qr<double>(1, 1, 6);
  check_qr<double>(10, 1, 7);
  check_qr<double>(1, 10, 8);
}

TEST(Qr, ComplexMatrices) {
  check_qr<zdouble>(20, 6, 9);
  check_qr<zdouble>(6, 20, 10);
  check_qr<zdouble>(15, 15, 11);
}

TEST(Qr, RankDeficientInputStillOrthogonal) {
  auto a = hcham::testing::rank_r_matrix<double>(30, 12, 3, 12);
  Matrix<double> q, r;
  la::qr_thin<double>(a.cview(), q, r);
  Matrix<double> qhq(12, 12);
  la::gemm(Op::ConjTrans, Op::NoTrans, 1.0, q.cview(), q.cview(), 0.0,
           qhq.view());
  auto eye = Matrix<double>::identity(12);
  EXPECT_LT(rel_diff<double>(qhq.cview(), eye.cview()), 1e-12);
  Matrix<double> qr(30, 12);
  la::gemm(Op::NoTrans, Op::NoTrans, 1.0, q.cview(), r.cview(), 0.0,
           qr.view());
  EXPECT_LT(rel_diff<double>(qr.cview(), a.cview()), 1e-12);
}

TEST(Qr, GeqrfRDiagonalRealForComplexInput) {
  // With the LAPACK larfg convention, the diagonal of R is real.
  auto a = Matrix<zdouble>::random(12, 8, 13);
  std::vector<zdouble> tau(8);
  la::geqrf(a.view(), tau.data());
  for (index_t j = 0; j < 8; ++j) EXPECT_NEAR(a(j, j).imag(), 0.0, 1e-14);
}

}  // namespace
}  // namespace hcham
