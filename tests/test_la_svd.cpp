// One-sided Jacobi SVD tests: reconstruction, orthogonality, known spectra,
// rank detection, complex inputs, and degenerate shapes.
#include <gtest/gtest.h>

#include "la/la.hpp"
#include "test_utils.hpp"

namespace hcham {
namespace {

using la::Matrix;
using la::Op;
using hcham::testing::rank_r_matrix;
using hcham::testing::rel_diff;
using hcham::testing::zdouble;

template <typename T>
void check_svd(const Matrix<T>& a, double tol = 1e-12) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t k = std::min(m, n);
  auto r = la::svd<T>(a.cview());
  ASSERT_EQ(r.u.rows(), m);
  ASSERT_EQ(r.u.cols(), k);
  ASSERT_EQ(r.v.rows(), n);
  ASSERT_EQ(r.v.cols(), k);
  ASSERT_EQ(static_cast<index_t>(r.sigma.size()), k);

  // Sorted decreasing and non-negative.
  for (index_t i = 0; i + 1 < k; ++i) {
    EXPECT_GE(r.sigma[static_cast<std::size_t>(i)],
              r.sigma[static_cast<std::size_t>(i + 1)]);
  }
  if (k > 0) {
    EXPECT_GE(r.sigma.back(), 0.0);
  }

  // Reconstruction U * S * V^H = A.
  Matrix<T> us(m, k);
  for (index_t j = 0; j < k; ++j)
    for (index_t i = 0; i < m; ++i)
      us(i, j) = r.u(i, j) * T(r.sigma[static_cast<std::size_t>(j)]);
  Matrix<T> rec(m, n);
  la::gemm(Op::NoTrans, Op::ConjTrans, T{1}, us.cview(), r.v.cview(), T{},
           rec.view());
  EXPECT_LT(rel_diff<T>(rec.cview(), a.cview()), tol);

  // U^H U = I on the numerically nonzero part; V^H V = I always.
  Matrix<T> vhv(k, k);
  la::gemm(Op::ConjTrans, Op::NoTrans, T{1}, r.v.cview(), r.v.cview(), T{},
           vhv.view());
  auto eye = Matrix<T>::identity(k);
  EXPECT_LT(rel_diff<T>(vhv.cview(), eye.cview()), 1e-11);
}

TEST(Svd, RandomSquareReal) {
  check_svd(Matrix<double>::random(20, 20, 1));
  check_svd(Matrix<double>::random(45, 45, 2));
}

TEST(Svd, TallAndWideReal) {
  check_svd(Matrix<double>::random(40, 12, 3));
  check_svd(Matrix<double>::random(12, 40, 4));
}

TEST(Svd, Complex) {
  check_svd(Matrix<zdouble>::random(25, 25, 5));
  check_svd(Matrix<zdouble>::random(30, 9, 6));
  check_svd(Matrix<zdouble>::random(9, 30, 7));
}

TEST(Svd, DiagonalMatrixRecoversEntries) {
  Matrix<double> a(4, 4);
  a(0, 0) = 3.0;
  a(1, 1) = -7.0;  // singular value is |.|
  a(2, 2) = 0.5;
  a(3, 3) = 10.0;
  auto r = la::svd<double>(a.cview());
  EXPECT_NEAR(r.sigma[0], 10.0, 1e-12);
  EXPECT_NEAR(r.sigma[1], 7.0, 1e-12);
  EXPECT_NEAR(r.sigma[2], 3.0, 1e-12);
  EXPECT_NEAR(r.sigma[3], 0.5, 1e-12);
}

TEST(Svd, RankDeficiencyDetected) {
  auto a = rank_r_matrix<double>(30, 20, 5, 8);
  auto r = la::svd<double>(a.cview());
  EXPECT_EQ(la::numerical_rank(r.sigma, 1e-10), 5);
  check_svd(a, 1e-11);
}

TEST(Svd, ComplexRankDeficiency) {
  auto a = rank_r_matrix<zdouble>(24, 18, 4, 9);
  auto r = la::svd<zdouble>(a.cview());
  EXPECT_EQ(la::numerical_rank(r.sigma, 1e-10), 4);
}

TEST(Svd, ZeroMatrix) {
  Matrix<double> a(5, 3);
  auto r = la::svd<double>(a.cview());
  for (double s : r.sigma) EXPECT_EQ(s, 0.0);
  EXPECT_EQ(la::numerical_rank(r.sigma, 1e-10), 0);
}

TEST(Svd, SingleElement) {
  Matrix<double> a(1, 1);
  a(0, 0) = -4.0;
  auto r = la::svd<double>(a.cview());
  EXPECT_NEAR(r.sigma[0], 4.0, 1e-15);
  check_svd(a, 1e-14);
}

TEST(Svd, SingularValuesMatchFrobeniusNorm) {
  auto a = Matrix<double>::random(15, 10, 10);
  auto r = la::svd<double>(a.cview());
  double sumsq = 0;
  for (double s : r.sigma) sumsq += s * s;
  const double fro = la::norm_fro(a.cview());
  EXPECT_NEAR(std::sqrt(sumsq), fro, 1e-12 * fro);
}

TEST(Svd, OrthonormalInputGivesUnitSigmas) {
  Matrix<double> q, r0;
  la::qr_thin<double>(Matrix<double>::random(30, 8, 11).cview(), q, r0);
  auto r = la::svd<double>(q.cview());
  for (double s : r.sigma) EXPECT_NEAR(s, 1.0, 1e-12);
}

}  // namespace
}  // namespace hcham
