// TRSM correctness: for every side/uplo/op/diag combination, verify that the
// computed X satisfies op(A) X = alpha B (left) or X op(A) = alpha B (right).
#include <gtest/gtest.h>

#include <tuple>

#include "la/la.hpp"
#include "test_utils.hpp"

namespace hcham {
namespace {

using la::ConstMatrixView;
using la::Diag;
using la::Matrix;
using la::Op;
using la::Side;
using la::Uplo;
using hcham::testing::rel_diff;
using hcham::testing::zdouble;

/// Dense triangular matrix with a strong diagonal (well-conditioned).
template <typename T>
Matrix<T> make_triangular(index_t n, Uplo uplo, Diag diag,
                          std::uint64_t seed) {
  auto a = Matrix<T>::random(n, n, seed);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      const bool keep = (uplo == Uplo::Lower) ? (i >= j) : (i <= j);
      if (!keep) a(i, j) = T{};
    }
    a(j, j) += T(static_cast<real_t<T>>(4));
    if (diag == Diag::Unit) a(j, j) = T{1};
  }
  return a;
}

/// Explicit op(A) as a dense matrix (for residual checks).
template <typename T>
Matrix<T> explicit_op(ConstMatrixView<T> a, Op op) {
  if (op == Op::NoTrans) return Matrix<T>::from_view(a);
  Matrix<T> r(a.cols(), a.rows());
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i)
      r(j, i) = (op == Op::ConjTrans) ? conj_if(a(i, j)) : a(i, j);
  return r;
}

template <typename T>
void check_trsm(Side side, Uplo uplo, Op op, Diag diag, index_t m, index_t n,
                std::uint64_t seed) {
  const index_t ad = (side == Side::Left) ? m : n;
  auto a = make_triangular<T>(ad, uplo, diag, seed);
  auto b = Matrix<T>::random(m, n, seed + 1);
  auto x = Matrix<T>::from_view(b.cview());
  const T alpha = T(static_cast<real_t<T>>(2));

  la::trsm(side, uplo, op, diag, alpha, a.cview(), x.view());

  // Residual: op(A) X - alpha B (left) or X op(A) - alpha B (right).
  auto opa = explicit_op<T>(a.cview(), op);
  Matrix<T> res(m, n);
  if (side == Side::Left) {
    la::gemm(Op::NoTrans, Op::NoTrans, T{1}, opa.cview(), x.cview(), T{},
             res.view());
  } else {
    la::gemm(Op::NoTrans, Op::NoTrans, T{1}, x.cview(), opa.cview(), T{},
             res.view());
  }
  auto alpha_b = Matrix<T>::from_view(b.cview());
  la::scal(alpha, alpha_b.view());
  EXPECT_LT(rel_diff<T>(res.cview(), alpha_b.cview()), 1e-12)
      << "side=" << (side == Side::Left ? "L" : "R")
      << " uplo=" << (uplo == Uplo::Lower ? "Lo" : "Up")
      << " op=" << la::to_string(op)
      << " diag=" << (diag == Diag::Unit ? "U" : "N");
}

using TrsmParam = std::tuple<Side, Uplo, Op, Diag>;
class TrsmAll : public ::testing::TestWithParam<TrsmParam> {};

TEST_P(TrsmAll, RealDouble) {
  auto [side, uplo, op, diag] = GetParam();
  check_trsm<double>(side, uplo, op, diag, 13, 9, 1000);
  check_trsm<double>(side, uplo, op, diag, 1, 1, 1100);
  check_trsm<double>(side, uplo, op, diag, 24, 17, 1200);
}

TEST_P(TrsmAll, ComplexDouble) {
  auto [side, uplo, op, diag] = GetParam();
  check_trsm<zdouble>(side, uplo, op, diag, 11, 6, 2000);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, TrsmAll,
    ::testing::Combine(::testing::Values(Side::Left, Side::Right),
                       ::testing::Values(Uplo::Lower, Uplo::Upper),
                       ::testing::Values(Op::NoTrans, Op::Trans,
                                         Op::ConjTrans),
                       ::testing::Values(Diag::Unit, Diag::NonUnit)));

TEST(Trsm, PaperAlgorithm1Kernels) {
  // The two TRSM flavors used by the tiled LU (Algorithm 1, lines 4 and 7).
  check_trsm<double>(Side::Left, Uplo::Lower, Op::NoTrans, Diag::Unit, 32, 32,
                     3000);
  check_trsm<double>(Side::Right, Uplo::Upper, Op::NoTrans, Diag::NonUnit, 32,
                     32, 3100);
}

TEST(Trsm, TrsvSolvesSingleVector) {
  auto a = make_triangular<double>(10, Uplo::Lower, Diag::NonUnit, 42);
  auto b = Matrix<double>::random(10, 1, 43);
  auto x = Matrix<double>::from_view(b.cview());
  la::trsv(Uplo::Lower, Op::NoTrans, Diag::NonUnit, a.cview(), x.data());
  Matrix<double> res(10, 1);
  la::gemm(Op::NoTrans, Op::NoTrans, 1.0, a.cview(), x.cview(), 0.0,
           res.view());
  EXPECT_LT(rel_diff<double>(res.cview(), b.cview()), 1e-12);
}

TEST(Trsm, NonSquareAThrows) {
  Matrix<double> a(3, 4), b(3, 2);
  EXPECT_THROW(la::trsm(Side::Left, Uplo::Lower, Op::NoTrans, Diag::NonUnit,
                        1.0, a.cview(), b.view()),
               Error);
}

TEST(Trsm, MismatchedBThrows) {
  Matrix<double> a(4, 4), b(3, 2);
  EXPECT_THROW(la::trsm(Side::Left, Uplo::Lower, Op::NoTrans, Diag::NonUnit,
                        1.0, a.cview(), b.view()),
               Error);
}

}  // namespace
}  // namespace hcham
