// Lifecycle subsystem tests: factor-store round trips and rejection of
// truncated/corrupted/mismatched files (with no partial state escaping),
// Session save/restore cold-starts, Woodbury rank-k updated solves against
// a dense referee (including sync and background rebase), and the bounded
// session cache (LRU order, pinning under pressure, spill-reload,
// concurrent tenants, stats JSON).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bem/testcase.hpp"
#include "core/tile_h.hpp"
#include "lifecycle/factor_store.hpp"
#include "lifecycle/session_cache.hpp"
#include "lifecycle/updatable_operator.hpp"
#include "serve/solver_service.hpp"
#include "test_utils.hpp"

namespace hcham {
namespace {

using bem::FemBemProblem;
using core::TileHMatrix;
using core::TileHOptions;
using la::Matrix;
using lifecycle::FactorKind;
using lifecycle::SessionCache;
using lifecycle::UpdatableOperator;
using rt::Engine;
using serve::Session;
using serve::SessionOptions;
using hcham::testing::rel_diff;

TileHOptions make_options(index_t nb, double eps) {
  TileHOptions opts;
  opts.tile_size = nb;
  opts.clustering.leaf_size = 32;
  opts.hmatrix.compression.eps = eps;
  return opts;
}

std::vector<unsigned char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void write_file(const std::string& path,
                const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// EXPECT that `fn` throws hcham::Error whose message contains `needle`.
template <typename Fn>
void expect_error_containing(Fn&& fn, const std::string& needle) {
  try {
    fn();
    ADD_FAILURE() << "expected Error containing \"" << needle << "\"";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

/// Scoped file that removes itself.
struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

// ---------------------------------------------------------------------------
// Factor store.

TEST(FactorStore, RoundTripIsBitExact) {
  const index_t n = 240;
  FemBemProblem<double> problem(n, 1.0, 8.0);
  auto gen = [&problem](index_t i, index_t j) { return problem.entry(i, j); };
  Engine engine({.num_workers = 2});
  auto m = TileHMatrix<double>::build(engine, problem.points(), gen,
                                      make_options(64, 1e-8));
  m.factorize(engine);
  const Matrix<double> before = m.to_dense_original();

  TempFile f("lifecycle_roundtrip.hfac");
  lifecycle::save_factors(m, FactorKind::Lu, f.path);

  Engine other({.num_workers = 1});
  auto loaded = lifecycle::load_factors<double>(other, f.path);
  EXPECT_EQ(loaded.kind, FactorKind::Lu);
  EXPECT_EQ(loaded.matrix.structure_signature(), m.structure_signature());
  const Matrix<double> after = loaded.matrix.to_dense_original();
  ASSERT_EQ(after.size(), before.size());
  EXPECT_EQ(std::memcmp(after.data(), before.data(),
                        sizeof(double) * static_cast<std::size_t>(n) * n),
            0)
      << "payload round trip must be bit-exact";
}

TEST(FactorStore, RejectsTruncatedCorruptedAndMismatchedFiles) {
  const index_t n = 180;
  FemBemProblem<double> problem(n, 1.0, 8.0);
  auto gen = [&problem](index_t i, index_t j) { return problem.entry(i, j); };
  Engine engine({.num_workers = 1});
  auto m = TileHMatrix<double>::build(engine, problem.points(), gen,
                                      make_options(64, 1e-6));
  m.factorize(engine);
  TempFile f("lifecycle_reject.hfac");
  lifecycle::save_factors(m, FactorKind::Lu, f.path);
  const std::vector<unsigned char> good = read_file(f.path);

  // Missing file.
  expect_error_containing(
      [&] { lifecycle::load_factors<double>(engine, "no_such_file.hfac"); },
      "cannot open");

  // Truncated at various cut points (header, tree block, payload).
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{12}, std::size_t{100}, good.size() / 2,
        good.size() - 1}) {
    write_file(f.path, std::vector<unsigned char>(good.begin(),
                                                  good.begin() + keep));
    expect_error_containing(
        [&] { lifecycle::load_factors<double>(engine, f.path); }, "truncated");
  }

  // Flipped payload byte: checksum rejects before any tile is trusted.
  {
    std::vector<unsigned char> bad = good;
    bad[bad.size() - 5] ^= 0x40;
    write_file(f.path, bad);
    expect_error_containing(
        [&] { lifecycle::load_factors<double>(engine, f.path); }, "checksum");
  }

  // Flipped structure-signature byte.
  {
    std::vector<unsigned char> bad = good;
    bad[lifecycle::detail::kStructureSigOffset] ^= 0x01;
    write_file(f.path, bad);
    expect_error_containing(
        [&] { lifecycle::load_factors<double>(engine, f.path); },
        "signature mismatch");
  }

  // Wrong magic.
  {
    std::vector<unsigned char> bad = good;
    bad[0] ^= 0xff;
    write_file(f.path, bad);
    expect_error_containing(
        [&] { lifecycle::load_factors<double>(engine, f.path); },
        "not a factor file");
  }

  // Wrong scalar type: double store read as float.
  write_file(f.path, good);
  expect_error_containing(
      [&] { lifecycle::load_factors<float>(engine, f.path); },
      "scalar type mismatch");

  // Hostile element counts must be rejected BEFORE they size an
  // allocation (clean Error, not bad_alloc / OOM). Patch the node count
  // deep in the tree block to 2^31 nodes (~100 GiB of Node storage) —
  // far beyond what the mapped bytes could possibly hold.
  {
    std::vector<unsigned char> bad = good;
    const std::size_t n_nodes_at =
        lifecycle::detail::kHeaderBytes + 8 +
        static_cast<std::size_t>(n) * 24 + 8 + static_cast<std::size_t>(n) * 8;
    const std::int64_t huge = std::int64_t{1} << 31;
    ASSERT_LT(n_nodes_at + sizeof huge, bad.size());
    std::memcpy(bad.data() + n_nodes_at, &huge, sizeof huge);
    write_file(f.path, bad);
    expect_error_containing(
        [&] { lifecycle::load_factors<double>(engine, f.path); },
        "corrupt tree block");
  }
}

// ---------------------------------------------------------------------------
// Session persistence.

TEST(SessionPersistence, RestoredSessionSolvesLikeTheOriginal) {
  const index_t n = 240;
  FemBemProblem<double> problem(n, 1.0, 8.0);
  auto gen = [&problem](index_t i, index_t j) { return problem.entry(i, j); };
  TempFile f("lifecycle_session.hfac");
  SessionOptions opts;
  opts.workers = 2;
  opts.save_factors_to = f.path;
  auto session = Session<double>::build(problem.points(), gen,
                                        make_options(64, 1e-8), opts);

  SessionOptions ropts;
  ropts.workers = 1;
  // Deliberately wrong: the factor kind must come from the file.
  ropts.cholesky = true;
  auto restored = Session<double>::restore(f.path, ropts);
  EXPECT_FALSE(restored.options().cholesky);
  EXPECT_EQ(restored.size(), n);
  EXPECT_TRUE(restored.persistable());
  EXPECT_GT(restored.memory_bytes(), 0u);

  auto b = Matrix<double>::random(n, 3, 17);
  Matrix<double> x1 = Matrix<double>::from_view(b.cview());
  Matrix<double> x2 = Matrix<double>::from_view(b.cview());
  session.solve_now(x1.view());
  restored.solve_now(x2.view());
  EXPECT_LT(rel_diff<double>(x2.cview(), x1.cview()), 1e-12)
      << "restored factors must reproduce the original solve";

  // A failed restore must throw, not hand back a half-built session.
  SessionOptions bopts;
  bopts.workers = 1;
  EXPECT_THROW(Session<double>::restore("missing.hfac", bopts), Error);
}

// ---------------------------------------------------------------------------
// Woodbury updatable operator.

struct WoodburyRig {
  static constexpr index_t n = 260;
  FemBemProblem<double> problem{n, 1.0, 8.0};
  Engine engine{{.num_workers = 2}};
  Matrix<double> a0;  ///< densified compressed operator (the referee base)

  TileHMatrix<double> assemble() {
    auto gen = [this](index_t i, index_t j) { return problem.entry(i, j); };
    auto m = TileHMatrix<double>::build(engine, problem.points(), gen,
                                        make_options(64, 1e-9));
    a0 = m.to_dense_original();
    return m;
  }

  /// x solving (a0 + sum_i U_i V_i^T) x = b by dense LU.
  Matrix<double> referee_solve(
      const std::vector<std::pair<Matrix<double>, Matrix<double>>>& deltas,
      const Matrix<double>& b) const {
    Matrix<double> m = Matrix<double>::from_view(a0.cview());
    for (const auto& [u, v] : deltas)
      la::gemm(la::Op::NoTrans, la::Op::ConjTrans, 1.0, u.cview(), v.cview(),
               1.0, m.view());
    Matrix<double> x = Matrix<double>::from_view(b.cview());
    EXPECT_EQ(la::gesv(m.view(), x.view()), 0);
    return x;
  }
};

TEST(UpdatableOperator, WoodburySolveMatchesDenseReferee) {
  WoodburyRig rig;
  UpdatableOperator<double> op(rig.engine, rig.assemble(), {.max_rank = 32});

  const auto b = Matrix<double>::random(rig.n, 2, 5);
  {  // No delta: plain base solve.
    Matrix<double> x = Matrix<double>::from_view(b.cview());
    op.solve(x.view());
    const auto x_ref = rig.referee_solve({}, b);
    EXPECT_LT(rel_diff<double>(x.cview(), x_ref.cview()), 1e-6);
  }

  std::vector<std::pair<Matrix<double>, Matrix<double>>> deltas;
  deltas.emplace_back(Matrix<double>::random(rig.n, 6, 11),
                      Matrix<double>::random(rig.n, 6, 12));
  op.update(deltas[0].first.cview(), deltas[0].second.cview());
  EXPECT_EQ(op.delta_rank(), 6);
  {
    Matrix<double> x = Matrix<double>::from_view(b.cview());
    op.solve(x.view());
    const auto x_ref = rig.referee_solve(deltas, b);
    EXPECT_LT(rel_diff<double>(x.cview(), x_ref.cview()), 1e-6);
  }

  // Second update accumulates on top of the first.
  deltas.emplace_back(Matrix<double>::random(rig.n, 4, 21),
                      Matrix<double>::random(rig.n, 4, 22));
  op.update(deltas[1].first.cview(), deltas[1].second.cview());
  {
    Matrix<double> x = Matrix<double>::from_view(b.cview());
    op.solve(x.view());
    const auto x_ref = rig.referee_solve(deltas, b);
    EXPECT_LT(rel_diff<double>(x.cview(), x_ref.cview()), 1e-6);
  }

  // Folding the delta into fresh factors serves the same operator.
  EXPECT_FALSE(op.needs_rebase());
  op.rebase();
  EXPECT_EQ(op.delta_rank(), 0);
  {
    Matrix<double> x = Matrix<double>::from_view(b.cview());
    op.solve(x.view());
    const auto x_ref = rig.referee_solve(deltas, b);
    EXPECT_LT(rel_diff<double>(x.cview(), x_ref.cview()), 1e-6);
  }
}

TEST(UpdatableOperator, RankBudgetSignalsRebase) {
  WoodburyRig rig;
  UpdatableOperator<double> op(rig.engine, rig.assemble(), {.max_rank = 4});
  // Honest rank 8 > budget 4: compaction must NOT force a lossy cap, it
  // must raise the rebase signal instead.
  op.update(Matrix<double>::random(rig.n, 8, 31).cview(),
            Matrix<double>::random(rig.n, 8, 32).cview());
  EXPECT_GT(op.delta_rank(), 4);
  EXPECT_TRUE(op.needs_rebase());
  op.rebase();
  EXPECT_FALSE(op.needs_rebase());
  EXPECT_EQ(op.delta_rank(), 0);
}

TEST(UpdatableOperator, BackgroundRebaseKeepsServingAndSwapsIn) {
  WoodburyRig rig;
  UpdatableOperator<double> op(rig.engine, rig.assemble(), {.max_rank = 32});
  std::vector<std::pair<Matrix<double>, Matrix<double>>> deltas;
  deltas.emplace_back(Matrix<double>::random(rig.n, 5, 41),
                      Matrix<double>::random(rig.n, 5, 42));
  op.update(deltas[0].first.cview(), deltas[0].second.cview());

  const auto b = Matrix<double>::random(rig.n, 1, 7);
  op.rebase_async();
  // Woodbury keeps serving while the rebase runs in the background.
  {
    Matrix<double> x = Matrix<double>::from_view(b.cview());
    op.solve(x.view());
    const auto x_ref = rig.referee_solve(deltas, b);
    EXPECT_LT(rel_diff<double>(x.cview(), x_ref.cview()), 1e-6);
  }
  // A second update staged during (or right after) the rebase survives it.
  deltas.emplace_back(Matrix<double>::random(rig.n, 3, 51),
                      Matrix<double>::random(rig.n, 3, 52));
  op.update(deltas[1].first.cview(), deltas[1].second.cview());
  op.wait_rebase();
  EXPECT_FALSE(op.rebase_in_progress());
  EXPECT_LE(op.delta_rank(), 3);  // the folded prefix is gone
  {
    Matrix<double> x = Matrix<double>::from_view(b.cview());
    op.solve(x.view());
    const auto x_ref = rig.referee_solve(deltas, b);
    EXPECT_LT(rel_diff<double>(x.cview(), x_ref.cview()), 1e-6);
  }
}

// ---------------------------------------------------------------------------
// Session cache.

constexpr index_t kCacheN = 160;

SessionOptions cache_session_opts() {
  SessionOptions o;
  o.workers = 1;
  return o;
}

serve::Session<double> build_cache_session(double height) {
  FemBemProblem<double> problem(kCacheN, 1.0, height);
  auto gen = [&problem](index_t i, index_t j) { return problem.entry(i, j); };
  return Session<double>::build(problem.points(), gen, make_options(64, 1e-7),
                                cache_session_opts());
}

/// Bytes of one cache session, measured once (all test sessions share n).
std::uint64_t one_session_bytes() {
  static const std::uint64_t bytes = build_cache_session(8.0).memory_bytes();
  return bytes;
}

TEST(SessionCache, LruEvictionOrder) {
  SessionCache<double> cache(
      {.max_bytes = one_session_bytes() * 5 / 2, .spill_dir = ""});
  { auto p = cache.get_or_build("a", [] { return build_cache_session(6.0); }); }
  { auto p = cache.get_or_build("b", [] { return build_cache_session(8.0); }); }
  // Touch a: b becomes the LRU victim.
  { auto p = cache.get_or_build("a", [] { return build_cache_session(6.0); }); }
  { auto p = cache.get_or_build("c", [] { return build_cache_session(10.0); }); }
  EXPECT_TRUE(cache.contains("a"));
  EXPECT_FALSE(cache.contains("b"));
  EXPECT_TRUE(cache.contains("c"));
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.spills, 0u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_LE(s.bytes, s.max_bytes);
}

TEST(SessionCache, PinnedEntriesSurvivePressure) {
  SessionCache<double> cache(
      {.max_bytes = one_session_bytes() * 3 / 2, .spill_dir = ""});
  auto pin_a = cache.get_or_build("a", [] { return build_cache_session(6.0); });
  {
    // b does not fit next to a, but a is pinned: b (unpinned once its own
    // pin drops) is the only legal victim.
    auto pin_b =
        cache.get_or_build("b", [] { return build_cache_session(8.0); });
    EXPECT_TRUE(cache.contains("a"));
    EXPECT_TRUE(cache.contains("b"));
  }
  EXPECT_TRUE(cache.contains("a"));
  EXPECT_FALSE(cache.contains("b"));
  // Pinned sessions stay usable under pressure.
  auto b = Matrix<double>::random(kCacheN, 1, 3);
  pin_a.solve_now(b.view());
  EXPECT_TRUE(std::isfinite(la::norm_fro(b.cview())));
}

TEST(SessionCache, SpillToDiskAndReload) {
  TempFile spill_a("a.hfac");  // sanitize(id) + .hfac in cwd
  TempFile spill_b("b.hfac");  // b spills in turn when a reloads
  SessionCache<double> cache(
      {.max_bytes = one_session_bytes() * 3 / 2, .spill_dir = "."});
  const auto b = Matrix<double>::random(kCacheN, 1, 9);
  Matrix<double> x_fresh = Matrix<double>::from_view(b.cview());
  {
    auto p = cache.get_or_build("a", [] { return build_cache_session(6.0); });
    p.solve_now(x_fresh.view());
  }
  { auto p = cache.get_or_build("b", [] { return build_cache_session(8.0); }); }
  EXPECT_FALSE(cache.contains("a"));
  EXPECT_TRUE(cache.spilled("a"));
  {
    auto p = cache.get_or_build("a", [] {
      ADD_FAILURE() << "spilled session must reload from disk, not rebuild";
      return build_cache_session(6.0);
    });
    Matrix<double> x_reloaded = Matrix<double>::from_view(b.cview());
    p.solve_now(x_reloaded.view());
    EXPECT_LT(rel_diff<double>(x_reloaded.cview(), x_fresh.cview()), 1e-12)
        << "reloaded factors must reproduce the original session's solve";
  }
  EXPECT_FALSE(cache.spilled("a"));
  const auto s = cache.stats();
  EXPECT_GE(s.spills, 1u);
  EXPECT_EQ(s.spill_reloads, 1u);
  EXPECT_GE(s.evictions, 1u);
}

TEST(SessionCache, FailedSpillDegradesToDiscard) {
  // The spill dir does not exist, so every eviction-time save_factors
  // fails. That must degrade to a plain discard — counted, never thrown
  // (the spill runs from Pin's noexcept destructor path).
  SessionCache<double> cache(
      {.max_bytes = one_session_bytes() * 3 / 2,
       .spill_dir = "no_such_spill_dir.d"});
  { auto p = cache.get_or_build("a", [] { return build_cache_session(6.0); }); }
  { auto p = cache.get_or_build("b", [] { return build_cache_session(8.0); }); }
  EXPECT_FALSE(cache.contains("a"));
  EXPECT_FALSE(cache.spilled("a"));
  const auto s = cache.stats();
  EXPECT_GE(s.evictions, 1u);
  EXPECT_EQ(s.spills, 0u);
  EXPECT_GE(s.failed_spills, 1u);
  // The discarded id stays serveable through its builder.
  bool rebuilt = false;
  {
    auto p = cache.get_or_build("a", [&rebuilt] {
      rebuilt = true;
      return build_cache_session(6.0);
    });
    auto b = Matrix<double>::random(kCacheN, 1, 5);
    p.solve_now(b.view());
    EXPECT_TRUE(std::isfinite(la::norm_fro(b.cview())));
  }
  EXPECT_TRUE(rebuilt);
}

TEST(SessionCache, BrokenSpillFileFallsBackToBuilder) {
  TempFile spill_a("a.hfac");
  TempFile spill_b("b.hfac");  // b spills when a's rebuild re-evicts it
  SessionCache<double> cache(
      {.max_bytes = one_session_bytes() * 3 / 2, .spill_dir = "."});
  { auto p = cache.get_or_build("a", [] { return build_cache_session(6.0); }); }
  { auto p = cache.get_or_build("b", [] { return build_cache_session(8.0); }); }
  ASSERT_TRUE(cache.spilled("a"));
  // Sabotage the spill file: the reload must drop the spill record and
  // fall back to the builder, not leave "a" permanently unserveable.
  write_file(spill_a.path, {0xde, 0xad, 0xbe, 0xef});
  bool rebuilt = false;
  {
    auto p = cache.get_or_build("a", [&rebuilt] {
      rebuilt = true;
      return build_cache_session(6.0);
    });
    auto b = Matrix<double>::random(kCacheN, 1, 7);
    p.solve_now(b.view());
    EXPECT_TRUE(std::isfinite(la::norm_fro(b.cview())));
  }
  EXPECT_TRUE(rebuilt);
  EXPECT_FALSE(cache.spilled("a"));
  // And the rebuilt entry serves hits like any other resident session.
  {
    auto p = cache.get_or_build("a", [] {
      ADD_FAILURE() << "resident session must hit, not rebuild";
      return build_cache_session(6.0);
    });
  }
}

TEST(SessionCache, ConcurrentTenantsAreSerializedPerSession) {
  SessionCache<double> cache(
      {.max_bytes = one_session_bytes() * 3 / 2, .spill_dir = ""});
  constexpr int kThreads = 4;
  constexpr int kIters = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &failures, t] {
      const std::string id = t % 2 == 0 ? "x" : "y";
      const double height = t % 2 == 0 ? 6.0 : 10.0;
      for (int it = 0; it < kIters; ++it) {
        auto pin = cache.get_or_build(
            id, [height] { return build_cache_session(height); });
        auto b = Matrix<double>::random(kCacheN, 1,
                                        static_cast<std::uint64_t>(t * 31 + it));
        pin.solve_now(b.view());
        if (!std::isfinite(static_cast<double>(la::norm_fro(b.cview()))))
          failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  const auto s = cache.stats();
  EXPECT_EQ(s.hits + s.misses,
            static_cast<std::uint64_t>(kThreads * kIters));
  // Two distinct ids: each id is built at most once per residency period.
  EXPECT_GE(s.misses, 2u);
}

TEST(SessionCache, StatsJsonHasStableKeys) {
  SessionCache<double> cache({.max_bytes = 1u << 30, .spill_dir = ""});
  { auto p = cache.get_or_build("a", [] { return build_cache_session(6.0); }); }
  const std::string js = cache.stats_json();
  for (const char* key :
       {"\"hits\":", "\"misses\":", "\"evictions\":", "\"spills\":",
        "\"failed_spills\":", "\"spill_reloads\":", "\"entries\":",
        "\"pinned\":", "\"bytes\":", "\"max_bytes\":"}) {
    EXPECT_NE(js.find(key), std::string::npos) << key << " missing in " << js;
  }
  // And the tallies ride along in the ServiceStats JSON "cache" section.
  serve::ServiceStats stats;
  cache.record_to(stats);
  const std::string service_js = serve::to_json(stats.snapshot());
  EXPECT_NE(service_js.find("\"cache\":{\"hits\":"), std::string::npos)
      << service_js;
  EXPECT_NE(service_js.find("\"misses\":1"), std::string::npos) << service_js;
}

}  // namespace
}  // namespace hcham
