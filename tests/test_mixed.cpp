// Mixed-precision factorization path and refinement correctness:
//  * solve_refined reports FRESH residuals when it exits after max_iters
//    (the stale-residual regression), for double AND float;
//  * the auto residual target scales with eps(real_t<T>) so float
//    refinement converges instead of burning max_iters every solve;
//  * TileHMatrix::convert_to preserves structure and values;
//  * fp32 factors + promoted refinement recover fp64-level forward error;
//  * serve::Session mixed build + SolverService stats plumbing
//    (mixed_precision flag, graph counters in plain snapshot, queue peak
//    sampled at push);
//  * bounded env parsing degrades hostile values to defaults.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "bem/testcase.hpp"
#include "core/hchameleon.hpp"
#include "core/mixed.hpp"
#include "lifecycle/config.hpp"
#include "serve/solver_service.hpp"
#include "test_utils.hpp"

namespace hcham {
namespace {

using namespace std::chrono_literals;
using bem::FemBemProblem;
using core::TileHMatrix;
using core::TileHOptions;
using la::Matrix;
using rt::Engine;

TileHOptions make_options(index_t nb, double eps) {
  TileHOptions opts;
  opts.tile_size = nb;
  opts.clustering.leaf_size = 32;
  opts.hmatrix.compression.eps = eps;
  return opts;
}

template <typename T>
Matrix<T> rhs_for(const TileHMatrix<T>& m, const Matrix<T>& x0) {
  Matrix<T> b(x0.rows(), x0.cols());
  for (index_t c = 0; c < x0.cols(); ++c) {
    std::vector<T> y(static_cast<std::size_t>(x0.rows()), T{});
    m.matvec(T{1}, x0.view().col(c), T{0}, y.data());
    la::unpack_column(y.data(), b.view(), c);
  }
  return b;
}

/// Residuals of X against the ORIGINAL b through op's matvec — the same
/// arithmetic solve_refined uses internally, recomputed independently.
template <typename T>
std::vector<double> fresh_residuals(const TileHMatrix<T>& op,
                                    const Matrix<T>& b0, const Matrix<T>& x) {
  const index_t n = b0.rows();
  std::vector<double> out;
  std::vector<T> xi(static_cast<std::size_t>(n));
  std::vector<T> r(static_cast<std::size_t>(n));
  for (index_t c = 0; c < b0.cols(); ++c) {
    for (index_t i = 0; i < n; ++i) {
      xi[static_cast<std::size_t>(i)] = x(i, c);
      r[static_cast<std::size_t>(i)] = b0(i, c);
    }
    op.matvec(T{-1}, xi.data(), T{1}, r.data());
    const double bn = la::nrm2(n, b0.data() + c * n);
    out.push_back(bn > 0.0 ? la::nrm2(n, r.data()) / bn : 0.0);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Stale-residual regression: force the max_iters exit (unreachable target)
// and check the reported residuals describe the RETURNED iterate, not the
// one a correction sweep earlier.

template <typename T>
void stale_residual_regression(double factor_eps, double agreement_tol) {
  const index_t n = 420;
  FemBemProblem<T> problem(n, 1.0, 8.0);
  Engine engine({.num_workers = 2});
  const auto* p = &problem;
  auto gen = [p](index_t i, index_t j) { return p->entry(i, j); };
  const auto opts = make_options(128, factor_eps);  // loose: sweeps matter
  auto m = TileHMatrix<T>::build(engine, problem.points(), gen, opts);
  auto op = TileHMatrix<T>::build(engine, problem.points(), gen, opts);
  m.factorize(engine);

  Matrix<T> x0 = Matrix<T>::random(n, 2, 11);
  Matrix<T> b0 = rhs_for(op, x0);
  Matrix<T> x = Matrix<T>::from_view(b0.cview());
  // An unreachable target forces the exit through the max_iters branch —
  // exactly where the old code returned pre-correction residuals.
  auto rr = core::solve_refined(m, op, engine, x.view(), /*max_iters=*/2,
                                /*target_residual=*/1e-300);
  ASSERT_EQ(rr.iterations, 2);

  const std::vector<double> fresh = fresh_residuals(op, b0, x);
  ASSERT_EQ(rr.column_residuals.size(), fresh.size());
  double fresh_max = 0.0;
  for (std::size_t c = 0; c < fresh.size(); ++c) {
    EXPECT_NEAR(rr.column_residuals[c], fresh[c],
                agreement_tol * std::max(1.0, fresh[c]))
        << "column " << c << " reports a stale residual";
    fresh_max = std::max(fresh_max, fresh[c]);
  }
  EXPECT_NEAR(rr.final_residual, fresh_max,
              agreement_tol * std::max(1.0, fresh_max));
}

TEST(SolveRefined, ResidualFreshAfterMaxItersDouble) {
  stale_residual_regression<double>(1e-3, 1e-12);
}

TEST(SolveRefined, ResidualFreshAfterMaxItersFloat) {
  stale_residual_regression<float>(1e-2, 1e-5);
}

// The old fixed default (1e-14) was unreachable for float, so refinement
// always burned max_iters sweeps. The auto target (<= 0 sentinel) must let
// float refinement STOP before an absurd iteration budget.
TEST(SolveRefined, AutoTargetConvergesForFloat) {
  const index_t n = 400;
  FemBemProblem<float> problem(n, 1.0f, 8.0f);
  Engine engine({.num_workers = 2});
  const auto* p = &problem;
  auto gen = [p](index_t i, index_t j) { return p->entry(i, j); };
  const auto opts = make_options(128, 1e-4);
  auto m = TileHMatrix<float>::build(engine, problem.points(), gen, opts);
  auto op = TileHMatrix<float>::build(engine, problem.points(), gen, opts);
  m.factorize(engine);

  Matrix<float> x0 = Matrix<float>::random(n, 2, 9);
  Matrix<float> b = rhs_for(op, x0);
  auto rr = core::solve_refined(m, op, engine, b.view(), /*max_iters=*/10);
  EXPECT_GT(rr.target, 0.0);  // auto target was derived
  // Scaled to float eps: reachable, and reached without burning the budget.
  EXPECT_GE(rr.target, 64.0 * std::numeric_limits<float>::epsilon());
  EXPECT_LE(rr.final_residual, rr.target);
  EXPECT_LT(rr.iterations, 10);
}

// ---------------------------------------------------------------------------
// Precision conversion.

TEST(Convert, RoundTripPreservesStructureAndValues) {
  const index_t n = 384;
  FemBemProblem<double> problem(n, 1.0, 8.0);
  Engine engine({.num_workers = 2});
  const auto* p = &problem;
  auto gen = [p](index_t i, index_t j) { return p->entry(i, j); };
  auto m = TileHMatrix<double>::build(engine, problem.points(), gen,
                                      make_options(128, 1e-8));
  auto mf = m.convert_to<float>(engine);
  // Structure (and hence Rk ranks) preserved exactly: no re-compression.
  EXPECT_EQ(mf.stored_elements(), m.stored_elements());
  EXPECT_EQ(mf.num_tiles(), m.num_tiles());
  // Values agree to float rounding.
  Matrix<double> dd = m.to_dense_original();
  Matrix<float> df = mf.to_dense_original();
  Matrix<double> dfp(n, n);
  la::convert<double, float>(df.cview(), dfp.view());
  EXPECT_LT(testing::rel_diff<double>(dfp.cview(), dd.cview()), 1e-5);
  // norm_fro is consistent with the dense norm.
  EXPECT_NEAR(static_cast<double>(m.norm_fro()),
              static_cast<double>(la::norm_fro(dd.cview())),
              1e-8 * static_cast<double>(la::norm_fro(dd.cview())));
  // The eps override feeds the structure signature (graph-cache isolation).
  auto mf_loose = m.convert_to<float>(engine, 1e-4);
  EXPECT_NE(mf.structure_signature(), mf_loose.structure_signature());
  EXPECT_EQ(mf.structure_signature(), m.structure_signature());
}

// fp32 factors + promoted refinement reach fp64-level forward error in a
// few sweeps — the tentpole acceptance property at test scale.
TEST(Convert, MixedFactorRefinedSolveReachesFp64Error) {
  const index_t n = 420;
  FemBemProblem<double> problem(n, 1.0, 8.0);
  Engine engine({.num_workers = 2});
  const auto* p = &problem;
  auto gen = [p](index_t i, index_t j) { return p->entry(i, j); };
  const auto opts = make_options(128, 1e-8);
  auto op = TileHMatrix<double>::build(engine, problem.points(), gen, opts);

  Matrix<double> x0 = Matrix<double>::random(n, 3, 17);
  Matrix<double> b = rhs_for(op, x0);

  // fp32 factors under a 100x looser tolerance.
  auto lo = op.convert_to<float>(engine, 1e-6);
  lo.factorize(engine);
  Matrix<double> x = Matrix<double>::from_view(b.cview());
  auto rr = core::solve_refined(lo, op, engine, x.view(), /*max_iters=*/3,
                                /*target_residual=*/1e-12);
  EXPECT_LE(rr.iterations, 3);
  EXPECT_LT(rr.final_residual, 1e-10);
  EXPECT_LT(testing::rel_diff<double>(x.cview(), x0.cview()), 1e-8);
}

TEST(Convert, MixedCholeskyAlsoRefines) {
  const index_t n = 360;
  FemBemProblem<double> problem(n, 1.0, 8.0);
  Engine engine({.num_workers = 2});
  const auto* p = &problem;
  auto gen = [p](index_t i, index_t j) { return p->entry(i, j); };
  const auto opts = make_options(128, 1e-8);
  auto op = TileHMatrix<double>::build(engine, problem.points(), gen, opts);
  Matrix<double> x0 = Matrix<double>::random(n, 2, 23);
  Matrix<double> b = rhs_for(op, x0);
  auto lo = op.convert_to<float>(engine, 1e-6);
  lo.factorize_cholesky(engine);
  Matrix<double> x = Matrix<double>::from_view(b.cview());
  auto rr = core::solve_refined(lo, op, engine, x.view(), /*max_iters=*/4,
                                /*target_residual=*/1e-12, /*cholesky=*/true);
  EXPECT_LT(rr.final_residual, 1e-10);
  EXPECT_LT(testing::rel_diff<double>(x.cview(), x0.cview()), 1e-8);
}

// ---------------------------------------------------------------------------
// Serve integration: mixed session + stats plumbing fixes.

TEST(MixedSession, ServesThroughFp32FactorsAndReportsStats) {
  const index_t n = 384;
  FemBemProblem<double> problem(n, 1.0, 8.0);
  serve::SessionOptions so;
  so.workers = 2;
  so.factor.precision = core::FactorPrecision::Single;
  so.factor.eps = 1e-6;
  auto session = serve::Session<double>::build(
      problem.points(),
      [p = &problem](index_t i, index_t j) { return p->entry(i, j); },
      make_options(128, 1e-8), so);
  EXPECT_TRUE(session.mixed_precision());
  // Mixed forces refinement even though refine_iters defaulted to 0.
  EXPECT_GE(session.options().refine_iters, 3);

  Engine tmp({.num_workers = 1});
  auto op = TileHMatrix<double>::build(
      tmp, problem.points(),
      [p = &problem](index_t i, index_t j) { return p->entry(i, j); },
      make_options(128, 1e-8));
  Matrix<double> x0 = Matrix<double>::random(n, 2, 31);
  Matrix<double> b = rhs_for(op, x0);

  serve::SolverService<double> svc(session);
  auto rep = svc.submit(Matrix<double>::from_view(b.cview())).get();
  ASSERT_EQ(rep.status, serve::SolveStatus::Ok) << rep.error;
  EXPECT_LT(testing::rel_diff<double>(rep.x.cview(), x0.cview()), 1e-7);
  svc.stop();

  auto s = svc.stats();
  EXPECT_TRUE(s.mixed_precision);
  // Depth is now sampled at push time, so a lone submission registers a
  // nonzero peak even though pops drain the queue immediately after.
  EXPECT_GE(s.queue_peak, 1);
  const std::string j = svc.stats_json();
  EXPECT_NE(j.find("\"mixed_precision\":true"), std::string::npos) << j;
}

TEST(Stats, PlainSnapshotCarriesGraphAndMixedFields) {
  serve::ServiceStats st;
  st.record_graph(3, 7);
  st.set_mixed_precision(true);
  st.queue_depth(5);
  st.queue_depth(1);
  auto s = st.snapshot();  // NOT via SolverService::stats()
  EXPECT_EQ(s.graph_captured, 3u);
  EXPECT_EQ(s.graph_replayed, 7u);
  EXPECT_TRUE(s.mixed_precision);
  EXPECT_EQ(s.queue_depth, 1);
  EXPECT_EQ(s.queue_peak, 5);
  const std::string j = serve::to_json(s);
  EXPECT_NE(j.find("\"captured\":3"), std::string::npos);
  EXPECT_NE(j.find("\"replayed\":7"), std::string::npos);
  EXPECT_NE(j.find("\"mixed_precision\":true"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Bounded env parsing: hostile values degrade to the fallback, they are
// NOT clamped into range.

TEST(EnvBounded, HostileValuesDegradeToDefaults) {
  ::setenv("HCHAM_TEST_BOUNDED", "-5", 1);
  EXPECT_EQ(env_long_bounded("HCHAM_TEST_BOUNDED", 32, 1, 100), 32);
  ::setenv("HCHAM_TEST_BOUNDED", "0", 1);
  EXPECT_EQ(env_long_bounded("HCHAM_TEST_BOUNDED", 32, 1, 100), 32);
  ::setenv("HCHAM_TEST_BOUNDED", "1000000000", 1);
  EXPECT_EQ(env_long_bounded("HCHAM_TEST_BOUNDED", 32, 1, 100), 32);
  ::setenv("HCHAM_TEST_BOUNDED", "64", 1);
  EXPECT_EQ(env_long_bounded("HCHAM_TEST_BOUNDED", 32, 1, 100), 64);
  // Bounds are inclusive.
  ::setenv("HCHAM_TEST_BOUNDED", "1", 1);
  EXPECT_EQ(env_long_bounded("HCHAM_TEST_BOUNDED", 32, 1, 100), 1);
  ::setenv("HCHAM_TEST_BOUNDED", "100", 1);
  EXPECT_EQ(env_long_bounded("HCHAM_TEST_BOUNDED", 32, 1, 100), 100);
  ::unsetenv("HCHAM_TEST_BOUNDED");
  EXPECT_EQ(env_long_bounded("HCHAM_TEST_BOUNDED", 32, 1, 100), 32);

  ::setenv("HCHAM_TEST_BOUNDED_D", "-0.5", 1);
  EXPECT_EQ(env_double_bounded("HCHAM_TEST_BOUNDED_D", 0.25, 0.0, 1.0), 0.25);
  ::setenv("HCHAM_TEST_BOUNDED_D", "nan", 1);
  EXPECT_EQ(env_double_bounded("HCHAM_TEST_BOUNDED_D", 0.25, 0.0, 1.0), 0.25);
  ::setenv("HCHAM_TEST_BOUNDED_D", "1e99", 1);
  EXPECT_EQ(env_double_bounded("HCHAM_TEST_BOUNDED_D", 0.25, 0.0, 1.0), 0.25);
  ::setenv("HCHAM_TEST_BOUNDED_D", "0.5", 1);
  EXPECT_EQ(env_double_bounded("HCHAM_TEST_BOUNDED_D", 0.25, 0.0, 1.0), 0.5);
  ::unsetenv("HCHAM_TEST_BOUNDED_D");
}

TEST(EnvBounded, FactorOptionsFromEnvParsesAndBounds) {
  ::setenv("HCHAM_FACTOR_PRECISION", "fp32", 1);
  ::setenv("HCHAM_FACTOR_EPS", "1e-4", 1);
  auto o = core::FactorOptions::from_env();
  EXPECT_TRUE(o.mixed());
  EXPECT_DOUBLE_EQ(o.eps, 1e-4);
  ::setenv("HCHAM_FACTOR_PRECISION", "native", 1);
  ::setenv("HCHAM_FACTOR_EPS", "0.9", 1);  // out of (0, 0.5]: fallback 0
  o = core::FactorOptions::from_env();
  EXPECT_FALSE(o.mixed());
  EXPECT_DOUBLE_EQ(o.eps, 0.0);
  ::unsetenv("HCHAM_FACTOR_PRECISION");
  ::unsetenv("HCHAM_FACTOR_EPS");
}

TEST(EnvBounded, LifecycleConfigFromEnvParsesAndBounds) {
  // Hostile values degrade to the defaults, never a clamp to an extreme.
  ::setenv("HCHAM_WOODBURY_MAX_RANK", "-4", 1);
  ::setenv("HCHAM_SESSION_CACHE_BYTES", "12", 1);  // below the 4 KiB floor
  ::setenv("HCHAM_FACTOR_STORE_DIR", "/tmp/hcham_spill", 1);
  auto c = lifecycle::LifecycleConfig::from_env();
  EXPECT_EQ(c.woodbury_max_rank, 32);
  EXPECT_EQ(c.session_cache_bytes, 256ull << 20);
  EXPECT_EQ(c.factor_store_dir, "/tmp/hcham_spill");

  ::setenv("HCHAM_WOODBURY_MAX_RANK", "not_a_number", 1);
  ::setenv("HCHAM_SESSION_CACHE_BYTES", "99999999999999999999", 1);  // overflow
  c = lifecycle::LifecycleConfig::from_env();
  EXPECT_EQ(c.woodbury_max_rank, 32);
  EXPECT_EQ(c.session_cache_bytes, 256ull << 20);

  // In-range values are taken verbatim (bounds inclusive).
  ::setenv("HCHAM_WOODBURY_MAX_RANK", "1", 1);
  ::setenv("HCHAM_SESSION_CACHE_BYTES", "4096", 1);
  c = lifecycle::LifecycleConfig::from_env();
  EXPECT_EQ(c.woodbury_max_rank, 1);
  EXPECT_EQ(c.session_cache_bytes, 4096u);
  ::setenv("HCHAM_WOODBURY_MAX_RANK", "4096", 1);
  c = lifecycle::LifecycleConfig::from_env();
  EXPECT_EQ(c.woodbury_max_rank, 4096);

  ::unsetenv("HCHAM_WOODBURY_MAX_RANK");
  ::unsetenv("HCHAM_SESSION_CACHE_BYTES");
  ::unsetenv("HCHAM_FACTOR_STORE_DIR");
  c = lifecycle::LifecycleConfig::from_env();
  EXPECT_EQ(c.woodbury_max_rank, 32);
  EXPECT_EQ(c.session_cache_bytes, 256ull << 20);
  EXPECT_TRUE(c.factor_store_dir.empty());
}

// demoted_t / convert_scalar sanity.
TEST(Scalar, DemotionMapping) {
  static_assert(std::is_same_v<demoted_t<double>, float>);
  static_assert(std::is_same_v<demoted_t<float>, float>);
  static_assert(
      std::is_same_v<demoted_t<std::complex<double>>, std::complex<float>>);
  const std::complex<double> z{1.5, -2.5};
  const auto zf = convert_scalar<std::complex<float>>(z);
  EXPECT_FLOAT_EQ(zf.real(), 1.5f);
  EXPECT_FLOAT_EQ(zf.imag(), -2.5f);
  EXPECT_DOUBLE_EQ(convert_scalar<double>(3.0f), 3.0);
}

}  // namespace
}  // namespace hcham
