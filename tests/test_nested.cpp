// Nested sub-epoch unit tests (DESIGN.md section 11): the heuristic gate
// (flops threshold, occupancy/parked-worker check, HCHAM_NESTED_DISABLE),
// STF inference inside a sub-epoch, error propagation to the parent epoch,
// nested fault injection, and workspace-arena availability when a thief
// executes a nested task.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "la/workspace.hpp"
#include "runtime/engine.hpp"

namespace hcham {
namespace {

using rt::Engine;
using rt::NestedEpoch;
using rt::read;
using rt::readwrite;

/// RAII setenv/unsetenv: the nested gate reads its knobs per construction.
struct EnvVar {
  const char* name;
  EnvVar(const char* n, const char* value) : name(n) {
    ::setenv(n, value, 1);
  }
  ~EnvVar() { ::unsetenv(name); }
};

/// Spin until `flag` is set or ~5 s elapse; returns whether it was set.
/// Used to force cross-worker interleavings without risking a hang.
bool spin_until(const std::atomic<bool>& flag) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!flag.load()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

/// Construct a NestedEpoch with `est_flops` inside a parent tile task on a
/// `workers`-wide engine (the parent epoch holds only that task, so every
/// other worker is idle) and report which mode the gate picked.
bool gate_decision(int workers, double est_flops) {
  Engine eng({.num_workers = workers});
  auto h = eng.register_data();
  bool parallel = false;
  eng.submit(
      [&eng, &parallel, est_flops] {
        NestedEpoch ep(eng, est_flops);
        parallel = ep.parallel();
      },
      {readwrite(h)});
  eng.wait_all();
  return parallel;
}

TEST(NestedGate, LargeTileOnIdlePoolGoesParallel) {
  EXPECT_TRUE(gate_decision(4, 1.0e9));
}

TEST(NestedGate, FlopsBelowThresholdStaysInline) {
  // Default HCHAM_NESTED_MIN_FLOPS is 1e7 dense-equivalent flops.
  EXPECT_FALSE(gate_decision(4, 1.0e3));
}

TEST(NestedGate, ThresholdIsTunable) {
  EnvVar min_flops("HCHAM_NESTED_MIN_FLOPS", "100");
  EXPECT_TRUE(gate_decision(4, 1.0e3));
}

TEST(NestedGate, DisableEnvWins) {
  EnvVar disable("HCHAM_NESTED_DISABLE", "1");
  EXPECT_FALSE(gate_decision(4, 1.0e9));
  EnvVar force("HCHAM_NESTED_FORCE", "1");
  EXPECT_FALSE(gate_decision(4, 1.0e9));  // disable beats force
}

TEST(NestedGate, MainThreadStaysInline) {
  Engine eng({.num_workers = 4});
  NestedEpoch ep(eng, 1.0e9);
  EXPECT_FALSE(ep.parallel());
  EXPECT_FALSE(eng.on_worker_thread());
}

TEST(NestedGate, SequentialEngineStaysInline) {
  // One worker executes on the calling thread (run_sequential): no pool
  // context, so the gate must keep the sub-epoch inline.
  EXPECT_FALSE(gate_decision(1, 1.0e9));
}

TEST(NestedGate, SaturatedPoolStaysInline) {
  // Two workers, both running a probe task, two more parent tasks queued:
  // no parked worker and more ready tasks than free workers, so splitting
  // a tile would help nobody. Both probes must see a closed gate.
  Engine eng({.num_workers = 2});
  std::atomic<int> started{0};
  std::atomic<bool> both_started{false};
  std::atomic<bool> gates_done{false};
  std::atomic<bool> timed_out{false};
  bool parallel[2] = {true, true};
  auto probe = [&](int slot) {
    if (started.fetch_add(1) + 1 == 2) both_started.store(true);
    if (!spin_until(both_started)) {
      timed_out.store(true);
      return;
    }
    NestedEpoch ep(eng, 1.0e9);
    parallel[slot] = ep.parallel();
    if (slot == 0) gates_done.store(true);  // slot 1 mirrors below
  };
  auto h0 = eng.register_data();
  auto h1 = eng.register_data();
  eng.submit([&probe] { probe(0); }, {readwrite(h0)}, 5, "probe");
  eng.submit(
      [&probe, &gates_done, &timed_out] {
        probe(1);
        // Keep this worker pinned until slot 0 has also judged its gate,
        // so the fillers below stay queued (the pool stays saturated) for
        // the whole window both probes measure.
        if (!spin_until(gates_done)) timed_out.store(true);
      },
      {readwrite(h1)}, 5, "probe");
  auto h2 = eng.register_data();
  auto h3 = eng.register_data();
  eng.submit([] {}, {readwrite(h2)}, 0, "filler");
  eng.submit([] {}, {readwrite(h3)}, 0, "filler");
  eng.wait_all();
  ASSERT_FALSE(timed_out.load());
  EXPECT_FALSE(parallel[0]);
  EXPECT_FALSE(parallel[1]);
}

TEST(NestedEpochTest, InlineModeRunsImmediatelyInOrder) {
  Engine eng;  // main thread: inline mode
  NestedEpoch ep(eng, 0.0);
  auto h = ep.register_data();
  std::vector<int> order;
  for (int i = 0; i < 4; ++i)
    ep.submit([&order, i] { order.push_back(i); }, {readwrite(h)});
  // Inline tasks already ran, before wait().
  ASSERT_EQ(order.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  ep.wait();
  EXPECT_EQ(ep.num_tasks(), 4);
  EXPECT_FALSE(ep.parallel());
}

TEST(NestedEpochTest, ParallelModeInfersStfEdges) {
  EnvVar force("HCHAM_NESTED_FORCE", "1");
  Engine eng({.num_workers = 2});
  auto h = eng.register_data();
  std::vector<int> order;
  index_t edges = -1, tasks = -1;
  eng.submit(
      [&] {
        NestedEpoch ep(eng, 0.0);
        ASSERT_TRUE(ep.parallel());
        auto a = ep.register_data();
        auto b = ep.register_data();
        // writer(a) -> two readers(a)+writers(b) -> writer(b): 2 + 2 edges.
        ep.submit([&order] { order.push_back(0); }, {readwrite(a)});
        ep.submit([&order] { order.push_back(1); }, {read(a), readwrite(b)});
        ep.submit([&order] { order.push_back(2); }, {read(a), readwrite(b)});
        ep.submit([&order] { order.push_back(3); }, {readwrite(b)});
        ep.wait();
        edges = ep.num_edges();
        tasks = ep.num_tasks();
      },
      {readwrite(h)});
  eng.wait_all();
  EXPECT_EQ(tasks, 4);
  EXPECT_EQ(edges, 4);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 0);  // the writer precedes its readers
  EXPECT_EQ(order.back(), 3);   // the final writer follows them
}

TEST(NestedEpochTest, ErrorPropagatesToParentEpoch) {
  EnvVar force("HCHAM_NESTED_FORCE", "1");
  Engine eng({.num_workers = 2});
  auto h = eng.register_data();
  std::atomic<int> ran{0};
  eng.submit(
      [&] {
        NestedEpoch ep(eng, 0.0);
        auto a = ep.register_data();
        ep.submit([&ran] { ++ran; }, {readwrite(a)});
        ep.submit([] { throw Error("nested boom"); }, {readwrite(a)});
        ep.submit([&ran] { ++ran; }, {readwrite(a)});
        ep.wait();  // rethrows inside the parent task
      },
      {readwrite(h)});
  EXPECT_THROW(eng.wait_all(), Error);
  // The sub-epoch drained fully before rethrowing, and the engine stays
  // usable afterwards.
  EXPECT_EQ(ran.load(), 2);
  EXPECT_TRUE(eng.drained());
  auto h2 = eng.register_data();
  std::atomic<bool> again{false};
  eng.submit([&again] { again.store(true); }, {readwrite(h2)});
  eng.wait_all();
  EXPECT_TRUE(again.load());
}

TEST(NestedEpochTest, InlineErrorAlsoRethrownFromWait) {
  Engine eng;  // inline mode
  NestedEpoch ep(eng, 0.0);
  auto a = ep.register_data();
  std::atomic<int> ran{0};
  ep.submit([&ran] { ++ran; }, {readwrite(a)});
  ep.submit([] { throw Error("inline boom"); }, {readwrite(a)});
  ep.submit([&ran] { ++ran; }, {readwrite(a)});  // still runs (drain parity)
  EXPECT_THROW(ep.wait(), Error);
  EXPECT_EQ(ran.load(), 2);
}

TEST(NestedEpochTest, FaultInjectionDropsOneNestedEdge) {
  EnvVar force("HCHAM_NESTED_FORCE", "1");
  // Drop the first nested edge: the 3-task RW chain keeps the remaining
  // edge, all tasks still run (pending counts stay consistent on a dropped
  // edge), and the edge tally reflects the drop.
  Engine eng({.num_workers = 2, .nested_fault_drop_edge = 0});
  auto h = eng.register_data();
  index_t edges = -1;
  std::atomic<int> ran{0};
  eng.submit(
      [&] {
        NestedEpoch ep(eng, 0.0);
        auto a = ep.register_data();
        for (int i = 0; i < 3; ++i)
          ep.submit([&ran] { ++ran; }, {readwrite(a)});
        ep.wait();
        edges = ep.num_edges();
      },
      {readwrite(h)});
  eng.wait_all();
  EXPECT_EQ(ran.load(), 3);
  EXPECT_EQ(edges, 1);  // chain of 2, one dropped
}

TEST(NestedEpochTest, ThiefExecutesWithWorkspaceArena) {
  EnvVar force("HCHAM_NESTED_FORCE", "1");
  // Deterministic steal: the owner pops nested task A (submitted first,
  // FIFO) and blocks in it until B reports in; only the second pool worker
  // can run B, from its idle-loop steal hook. B also checks it inherited a
  // workspace arena (the WorkspaceLease held by every pool worker), the
  // handoff the per-tile kernels rely on.
  Engine eng({.num_workers = 2});
  auto h = eng.register_data();
  std::atomic<bool> b_ran{false};
  std::atomic<bool> b_had_arena{false};
  std::atomic<bool> timed_out{false};
  index_t stolen = -1;
  eng.submit(
      [&] {
        NestedEpoch ep(eng, 0.0);
        ASSERT_TRUE(ep.parallel());
        auto a = ep.register_data();
        auto b = ep.register_data();
        ep.submit(
            [&] {
              if (!spin_until(b_ran)) timed_out.store(true);
            },
            {readwrite(a)});
        ep.submit(
            [&] {
              b_had_arena.store(la::tls_workspace() != nullptr);
              b_ran.store(true);
            },
            {readwrite(b)});
        ep.wait();
        stolen = ep.stolen();
      },
      {readwrite(h)});
  eng.wait_all();
  ASSERT_FALSE(timed_out.load());
  EXPECT_TRUE(b_ran.load());
  EXPECT_TRUE(b_had_arena.load());
  EXPECT_EQ(stolen, 1);
}

TEST(NestedEpochTest, NestedInsideNestedStaysInline) {
  EnvVar force("HCHAM_NESTED_FORCE", "1");
  Engine eng({.num_workers = 2});
  auto h = eng.register_data();
  bool outer_parallel = false;
  bool inner_parallel = true;
  eng.submit(
      [&] {
        NestedEpoch outer(eng, 0.0);
        outer_parallel = outer.parallel();
        auto a = outer.register_data();
        outer.submit(
            [&] {
              NestedEpoch inner(eng, 0.0);
              inner_parallel = inner.parallel();
              auto x = inner.register_data();
              inner.submit([] {}, {readwrite(x)});
              inner.wait();
            },
            {readwrite(a)});
        outer.wait();
      },
      {readwrite(h)});
  eng.wait_all();
  EXPECT_TRUE(outer_parallel);
  EXPECT_FALSE(inner_parallel);
}

TEST(NestedEpochTest, ManyConcurrentSubEpochs) {
  EnvVar force("HCHAM_NESTED_FORCE", "1");
  // Several parent tasks open sub-epochs at once; every nested task runs
  // exactly once despite cross-epoch stealing.
  Engine eng({.num_workers = 4});
  constexpr int kParents = 8;
  constexpr int kChain = 5;
  std::atomic<int> total{0};
  std::vector<rt::Handle> hs;
  for (int p = 0; p < kParents; ++p) hs.push_back(eng.register_data());
  for (int p = 0; p < kParents; ++p) {
    eng.submit(
        [&eng, &total] {
          NestedEpoch ep(eng, 0.0);
          auto a = ep.register_data();
          for (int i = 0; i < kChain; ++i)
            ep.submit([&total] { total.fetch_add(1); }, {readwrite(a)});
          ep.wait();
        },
        {readwrite(hs[static_cast<std::size_t>(p)])});
  }
  eng.wait_all();
  EXPECT_EQ(total.load(), kParents * kChain);
}

}  // namespace
}  // namespace hcham
