// RkMatrix, truncation, and rounded-addition tests.
#include <gtest/gtest.h>

#include "rk/rk_matrix.hpp"
#include "rk/truncation.hpp"
#include "test_utils.hpp"

namespace hcham {
namespace {

using la::Matrix;
using la::Op;
using rk::RkMatrix;
using rk::TruncationParams;
using hcham::testing::rank_r_matrix;
using hcham::testing::rel_diff;
using hcham::testing::zdouble;

template <typename T>
RkMatrix<T> random_rk(index_t m, index_t n, index_t k, std::uint64_t seed) {
  return RkMatrix<T>(Matrix<T>::random(m, k, seed),
                     Matrix<T>::random(n, k, seed + 1));
}

TEST(RkMatrix, ZeroConstruction) {
  RkMatrix<double> a(5, 7);
  EXPECT_EQ(a.rows(), 5);
  EXPECT_EQ(a.cols(), 7);
  EXPECT_EQ(a.rank(), 0);
  EXPECT_TRUE(a.is_zero());
  EXPECT_EQ(a.stored_elements(), 0);
  auto d = a.dense();
  EXPECT_EQ(la::norm_fro(d.cview()), 0.0);
}

TEST(RkMatrix, DenseMatchesFactors) {
  auto a = random_rk<double>(8, 6, 3, 1);
  Matrix<double> expected(8, 6);
  la::gemm(Op::NoTrans, Op::ConjTrans, 1.0, a.u().cview(), a.v().cview(), 0.0,
           expected.view());
  EXPECT_LT(rel_diff<double>(a.dense().cview(), expected.cview()), 1e-15);
  EXPECT_EQ(a.stored_elements(), (8 + 6) * 3);
}

TEST(RkMatrix, AddToAccumulates) {
  auto a = random_rk<zdouble>(5, 5, 2, 3);
  auto base = Matrix<zdouble>::random(5, 5, 9);
  auto acc = Matrix<zdouble>::from_view(base.cview());
  a.add_to(zdouble(2, 1), acc.view());
  auto expected = Matrix<zdouble>::from_view(base.cview());
  la::axpy(zdouble(2, 1), a.dense().cview(), expected.view());
  EXPECT_LT(rel_diff<zdouble>(acc.cview(), expected.cview()), 1e-14);
}

TEST(RkMatrix, MismatchedFactorsThrow) {
  RkMatrix<double> a(5, 7);
  EXPECT_THROW(
      a.set_factors(Matrix<double>::random(5, 2, 0),
                    Matrix<double>::random(7, 3, 1)),
      Error);
  EXPECT_THROW(
      a.set_factors(Matrix<double>::random(4, 2, 0),
                    Matrix<double>::random(7, 2, 1)),
      Error);
}

template <typename T>
void check_rk_gemv(Op op, index_t m, index_t n, index_t k,
                   std::uint64_t seed) {
  auto a = random_rk<T>(m, n, k, seed);
  auto dense = a.dense();
  const index_t xd = (op == Op::NoTrans) ? n : m;
  const index_t yd = (op == Op::NoTrans) ? m : n;
  auto x = Matrix<T>::random(xd, 1, seed + 5);
  auto y = Matrix<T>::random(yd, 1, seed + 6);
  auto y_ref = Matrix<T>::from_view(y.cview());
  const T alpha = T(static_cast<real_t<T>>(2));
  a.gemv(op, alpha, x.data(), y.data());
  la::gemv(op, alpha, dense.cview(), x.data(), T{1}, y_ref.data());
  EXPECT_LT(rel_diff<T>(y.cview(), y_ref.cview()), 1e-13)
      << la::to_string(op);
}

TEST(RkMatrix, GemvAllOpsReal) {
  for (auto op : {Op::NoTrans, Op::Trans, Op::ConjTrans})
    check_rk_gemv<double>(op, 13, 9, 4, 100);
}

TEST(RkMatrix, GemvAllOpsComplex) {
  for (auto op : {Op::NoTrans, Op::Trans, Op::ConjTrans})
    check_rk_gemv<zdouble>(op, 10, 14, 3, 200);
}

TEST(Truncate, ReducesOverestimatedRank) {
  // A rank-3 matrix stored with rank-10 factors must shrink to 3.
  auto exact = rank_r_matrix<double>(20, 15, 3, 7);
  auto compressed = rk::compress_svd<double>(exact.cview(),
                                             TruncationParams{1e-10, -1});
  // Inflate the factors artificially: pad with tiny noise columns.
  Matrix<double> u(20, 10), v(15, 10);
  la::copy<double>(compressed.u().cview(), u.block(0, 0, 20, 3));
  la::copy<double>(compressed.v().cview(), v.block(0, 0, 15, 3));
  for (index_t j = 3; j < 10; ++j)
    for (index_t i = 0; i < 20; ++i) u(i, j) = 1e-14 * static_cast<double>(i);
  RkMatrix<double> a(std::move(u), std::move(v));
  EXPECT_EQ(a.rank(), 10);
  rk::truncate(a, TruncationParams{1e-8, -1});
  EXPECT_EQ(a.rank(), 3);
  EXPECT_LT(rel_diff<double>(a.dense().cview(), exact.cview()), 1e-8);
}

TEST(Truncate, RespectsMaxRankCap) {
  auto a = random_rk<double>(30, 30, 12, 11);
  auto exact = a.dense();
  rk::truncate(a, TruncationParams{0.0, 5});
  EXPECT_LE(a.rank(), 5);
  // Best rank-5 approximation error equals the tail singular values.
  auto svd = la::svd<double>(exact.cview());
  double tail = 0;
  for (std::size_t i = 5; i < svd.sigma.size(); ++i)
    tail += svd.sigma[i] * svd.sigma[i];
  Matrix<double> diff = a.dense();
  la::axpy(-1.0, exact.cview(), diff.view());
  EXPECT_NEAR(la::norm_fro(diff.cview()), std::sqrt(tail),
              1e-8 * la::norm_fro(exact.cview()));
}

TEST(Truncate, ZeroRankStaysZero) {
  RkMatrix<double> a(6, 6);
  EXPECT_EQ(rk::truncate(a, TruncationParams{1e-6, -1}), 0);
  EXPECT_TRUE(a.is_zero());
}

TEST(Truncate, EverythingBelowToleranceBecomesZero) {
  auto a = random_rk<double>(10, 10, 2, 13);
  // eps > 1 relative: even sigma_0 survives (strict >). Use the cap
  // instead: max_rank = 0 forces exact zero.
  rk::truncate(a, TruncationParams{1e-6, 0});
  EXPECT_TRUE(a.is_zero());
}

TEST(Truncate, ComplexFactorization) {
  auto a = random_rk<zdouble>(18, 12, 6, 17);
  auto exact = a.dense();
  rk::truncate(a, TruncationParams{1e-12, -1});
  EXPECT_LE(a.rank(), 6);
  EXPECT_LT(rel_diff<zdouble>(a.dense().cview(), exact.cview()), 1e-11);
}

TEST(RoundedAdd, MatchesDenseAddition) {
  auto a = random_rk<double>(16, 12, 3, 21);
  auto b = random_rk<double>(16, 12, 4, 23);
  Matrix<double> expected = a.dense();
  la::axpy(-2.5, b.dense().cview(), expected.view());
  rk::rounded_add(a, -2.5, b, TruncationParams{1e-12, -1});
  EXPECT_LE(a.rank(), 7);
  EXPECT_LT(rel_diff<double>(a.dense().cview(), expected.cview()), 1e-11);
}

TEST(RoundedAdd, ComplexAlpha) {
  auto a = random_rk<zdouble>(9, 11, 2, 31);
  auto b = random_rk<zdouble>(9, 11, 2, 33);
  Matrix<zdouble> expected = a.dense();
  la::axpy(zdouble(0, 1), b.dense().cview(), expected.view());
  rk::rounded_add(a, zdouble(0, 1), b, TruncationParams{1e-12, -1});
  EXPECT_LT(rel_diff<zdouble>(a.dense().cview(), expected.cview()), 1e-11);
}

TEST(RoundedAdd, IntoZeroMatrix) {
  RkMatrix<double> c(14, 10);
  auto b = random_rk<double>(14, 10, 3, 41);
  rk::rounded_add(c, 1.0, b, TruncationParams{1e-12, -1});
  EXPECT_LT(rel_diff<double>(c.dense().cview(), b.dense().cview()), 1e-12);
}

TEST(RoundedAdd, CancellationLeavesNegligibleResidual) {
  // A - A: the result must be numerically zero. Note the truncation
  // criterion is RELATIVE to the residual's own largest singular value, so
  // the rank need not collapse to 0 - but the magnitude must vanish.
  auto a = random_rk<double>(12, 12, 3, 51);
  RkMatrix<double> c(12, 12);
  rk::rounded_add(c, 1.0, a, TruncationParams{1e-12, -1});
  rk::rounded_add(c, -1.0, a, TruncationParams{1e-10, -1});
  EXPECT_LE(c.rank(), 6);
  EXPECT_LT(la::norm_fro(c.dense().cview()),
            1e-12 * la::norm_fro(a.dense().cview()));
}

TEST(RoundedAdd, ShapeMismatchThrows) {
  RkMatrix<double> c(5, 5);
  auto b = random_rk<double>(6, 5, 2, 61);
  EXPECT_THROW(rk::rounded_add(c, 1.0, b, TruncationParams{}), Error);
}

TEST(CompressSvd, RecoversExactLowRank) {
  auto exact = rank_r_matrix<zdouble>(25, 20, 4, 71);
  auto c = rk::compress_svd<zdouble>(exact.cview(),
                                     TruncationParams{1e-10, -1});
  EXPECT_EQ(c.rank(), 4);
  EXPECT_LT(rel_diff<zdouble>(c.dense().cview(), exact.cview()), 1e-10);
}

TEST(CompressSvd, FullRankInputAtLooseTolerance) {
  auto a = Matrix<double>::random(20, 20, 81);
  auto c = rk::compress_svd<double>(a.cview(), TruncationParams{0.5, -1});
  EXPECT_LT(c.rank(), 20);  // something must be dropped at eps = 0.5
  EXPECT_GT(c.rank(), 0);
}

}  // namespace
}  // namespace hcham
