// Task-runtime tests: dependency inference (sequential task flow), parallel
// execution correctness under all schedulers, DAG export, and tracing.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/engine.hpp"
#include "runtime/trace_json.hpp"

namespace hcham {
namespace {

using rt::AccessMode;
using rt::Engine;
using rt::Handle;
using rt::read;
using rt::readwrite;
using rt::SchedulerPolicy;
using rt::write;

TEST(Runtime, TasksWithoutDepsAllRun) {
  Engine eng;
  std::atomic<int> count{0};
  auto h = eng.register_data();
  for (int i = 0; i < 10; ++i)
    eng.submit([&count] { ++count; }, {read(h)});
  eng.wait_all();
  EXPECT_EQ(count.load(), 10);
  EXPECT_EQ(eng.num_edges(), 0);  // independent readers
}

TEST(Runtime, WriteAfterWriteSerializes) {
  Engine eng;
  auto h = eng.register_data("x");
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    eng.submit([&order, i] { order.push_back(i); }, {readwrite(h)});
  eng.wait_all();
  ASSERT_EQ(order.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(eng.num_edges(), 4);  // a chain
}

TEST(Runtime, ReadersWaitForWriter) {
  Engine eng({.num_workers = 4});
  auto h = eng.register_data();
  std::atomic<int> value{0};
  eng.submit([&value] { value = 42; }, {write(h)});
  std::atomic<int> seen_correct{0};
  for (int i = 0; i < 8; ++i)
    eng.submit(
        [&value, &seen_correct] {
          if (value.load() == 42) ++seen_correct;
        },
        {read(h)});
  eng.wait_all();
  EXPECT_EQ(seen_correct.load(), 8);
}

TEST(Runtime, WriterWaitsForAllReaders) {
  Engine eng({.num_workers = 4});
  auto h = eng.register_data();
  std::atomic<int> readers_done{0};
  std::atomic<bool> writer_after_readers{false};
  eng.submit([] {}, {write(h)});
  for (int i = 0; i < 6; ++i)
    eng.submit([&readers_done] { ++readers_done; }, {read(h)});
  eng.submit(
      [&] { writer_after_readers = (readers_done.load() == 6); },
      {write(h)});
  eng.wait_all();
  EXPECT_TRUE(writer_after_readers.load());
}

TEST(Runtime, DiamondDependency) {
  Engine eng({.num_workers = 3});
  auto a = eng.register_data();
  auto b = eng.register_data();
  auto c = eng.register_data();
  std::vector<int> order;
  std::mutex mu;
  auto log = [&](int id) {
    std::lock_guard<std::mutex> lk(mu);
    order.push_back(id);
  };
  eng.submit([&] { log(0); }, {write(a)});
  eng.submit([&] { log(1); }, {read(a), write(b)});
  eng.submit([&] { log(2); }, {read(a), write(c)});
  eng.submit([&] { log(3); }, {read(b), read(c)});
  eng.wait_all();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 0);
  EXPECT_EQ(order.back(), 3);
}

class RuntimePolicies : public ::testing::TestWithParam<SchedulerPolicy> {};

TEST_P(RuntimePolicies, ChainedAccumulationIsDeterministic) {
  // Hundreds of read-modify-write tasks on shared cells: any execution that
  // respects dependencies yields the exact same result.
  Engine eng({.num_workers = 4, .policy = GetParam()});
  constexpr int kCells = 16;
  constexpr int kRounds = 40;
  std::vector<double> cells(kCells, 1.0);
  std::vector<Handle> handles;
  for (int i = 0; i < kCells; ++i) handles.push_back(eng.register_data());

  for (int r = 0; r < kRounds; ++r) {
    for (int i = 0; i < kCells; ++i) {
      const int j = (i + 1) % kCells;
      // cells[j] += 0.5 * cells[i]
      eng.submit([&cells, i, j] { cells[j] += 0.5 * cells[i]; },
                 {read(handles[i]), readwrite(handles[j])}, r % 3);
    }
  }
  eng.wait_all();

  // Sequential reference.
  std::vector<double> ref(kCells, 1.0);
  for (int r = 0; r < kRounds; ++r)
    for (int i = 0; i < kCells; ++i) ref[(i + 1) % kCells] += 0.5 * ref[i];
  for (int i = 0; i < kCells; ++i)
    EXPECT_DOUBLE_EQ(cells[static_cast<std::size_t>(i)],
                     ref[static_cast<std::size_t>(i)])
        << "policy " << rt::to_string(GetParam());
}

TEST_P(RuntimePolicies, ManyIndependentTasksAllExecute) {
  Engine eng({.num_workers = 8, .policy = GetParam()});
  std::atomic<int> count{0};
  std::vector<Handle> hs;
  for (int i = 0; i < 200; ++i) hs.push_back(eng.register_data());
  for (int i = 0; i < 200; ++i)
    eng.submit([&count] { ++count; }, {write(hs[static_cast<std::size_t>(i)])},
               i % 5);
  eng.wait_all();
  EXPECT_EQ(count.load(), 200);
}

TEST_P(RuntimePolicies, WriteBeforeReadOnSameHandleDoesNotHang) {
  // Regression: a task listing write(h) before read(h) used to create a
  // self-edge (the write path set last_writer = id, then the read path
  // added an edge from last_writer to id), so pending never reached 0 and
  // wait_all() deadlocked with all workers parked. Mixed-order duplicate
  // accesses must collapse to zero self-dependencies.
  Engine eng({.num_workers = 4, .policy = GetParam()});
  auto h1 = eng.register_data();
  auto h2 = eng.register_data();
  std::atomic<int> count{0};
  eng.submit([&count] { ++count; }, {write(h1), read(h1)});
  eng.submit([&count] { ++count; }, {read(h1), write(h1), read(h1)});
  eng.submit([&count] { ++count; },
             {read(h2), readwrite(h2), write(h1), read(h2)});
  eng.submit([&count] { ++count; }, {read(h1), read(h1), write(h2)});
  eng.wait_all();
  EXPECT_EQ(count.load(), 4);
  // And the graph is still the plain chain on h1 (edges 1->2->3->4 plus the
  // h2 chain), with no duplicated reader edges.
  for (const auto& node : eng.graph().nodes)
    for (std::size_t i = 0; i + 1 < node.successors.size(); ++i)
      EXPECT_NE(node.successors[i], node.successors[i + 1]);
}

TEST_P(RuntimePolicies, WriteBeforeReadDoesNotHangOnLockedPath) {
  // Same regression under check_conflicts, which routes execution through
  // the global-lock fallback scheduler.
  Engine eng({.num_workers = 4,
              .policy = GetParam(),
              .check_conflicts = true});
  auto h = eng.register_data();
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i)
    eng.submit([&count] { ++count; }, {write(h), read(h)});
  eng.wait_all();
  EXPECT_EQ(count.load(), 8);
  EXPECT_TRUE(eng.conflicts().empty());
}

TEST_P(RuntimePolicies, MultiEpochHeavyGraphDrainsEveryTime) {
  // Lock-light path stress: several wait_all() epochs with cross-epoch
  // dependencies, checking the parked-worker wakeup protocol never strands
  // a worker between epochs.
  Engine eng({.num_workers = 4, .policy = GetParam()});
  constexpr int kHandles = 8;
  std::vector<Handle> hs;
  for (int i = 0; i < kHandles; ++i) hs.push_back(eng.register_data());
  std::atomic<int> count{0};
  for (int epoch = 0; epoch < 5; ++epoch) {
    for (int i = 0; i < 64; ++i)
      eng.submit([&count] { ++count; },
                 {readwrite(hs[static_cast<std::size_t>(i % kHandles)]),
                  read(hs[static_cast<std::size_t>((i + 1) % kHandles)])},
                 i % 3);
    eng.wait_all();
    EXPECT_EQ(count.load(), 64 * (epoch + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, RuntimePolicies,
                         ::testing::Values(SchedulerPolicy::WorkStealing,
                                           SchedulerPolicy::LocalityWorkStealing,
                                           SchedulerPolicy::Priority));

TEST(Runtime, EpochsCarryDependenciesAcrossWaitAll) {
  Engine eng({.num_workers = 2});
  auto h = eng.register_data();
  int x = 0;
  eng.submit([&x] { x = 1; }, {write(h)});
  eng.wait_all();
  EXPECT_EQ(x, 1);
  eng.submit([&x] { x += 10; }, {readwrite(h)});
  eng.wait_all();
  EXPECT_EQ(x, 11);
}

TEST(Runtime, GraphSnapshotHasDurationsAndEdges) {
  Engine eng;
  auto h = eng.register_data();
  eng.submit([] {}, {write(h)}, 2, "first");
  eng.submit([] {}, {readwrite(h)}, 1, "second");
  eng.wait_all();
  auto g = eng.graph();
  ASSERT_EQ(g.num_tasks(), 2);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.nodes[0].label, "first");
  EXPECT_EQ(g.nodes[0].successors.size(), 1u);
  EXPECT_EQ(g.nodes[1].num_dependencies, 1);
  EXPECT_GE(g.nodes[0].duration_s, 0.0);
  EXPECT_EQ(g.nodes[0].priority, 2);
}

TEST(Runtime, CriticalPathOfAChainIsTotalWork) {
  Engine eng;
  auto h = eng.register_data();
  for (int i = 0; i < 5; ++i)
    eng.submit([] {}, {readwrite(h)});
  eng.wait_all();
  auto g = eng.graph();
  EXPECT_NEAR(g.critical_path_s(), g.total_work_s(), 1e-12);
}

TEST(Runtime, DotExportContainsNodesAndEdges) {
  Engine eng;
  auto h = eng.register_data();
  eng.submit([] {}, {write(h)}, 0, "getrf");
  eng.submit([] {}, {read(h)}, 0, "trsm");
  eng.wait_all();
  const std::string dot = eng.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("getrf"), std::string::npos);
  EXPECT_NE(dot.find("t0 -> t1"), std::string::npos);
}

TEST(Runtime, TraceRecordsAllTasks) {
  Engine eng({.num_workers = 2, .record_trace = true});
  auto h = eng.register_data();
  for (int i = 0; i < 7; ++i) eng.submit([] {}, {readwrite(h)});
  eng.wait_all();
  EXPECT_EQ(eng.trace().size(), 7u);
  for (const auto& ev : eng.trace()) {
    EXPECT_GE(ev.worker, 0);
    EXPECT_LT(ev.worker, 2);
    EXPECT_LE(ev.start_s, ev.end_s);
  }
}

TEST(Runtime, TraceJsonEscapesLabels) {
  // Labels can carry arbitrary text (user-provided block names); the JSON
  // emitter must escape quotes, backslashes, and control characters so the
  // output stays parseable. Decode the emitted name and require an exact
  // round trip.
  const std::string label = "lu \"block\" a\\b\ttab\nline\x01end";
  Engine eng({.num_workers = 1, .record_trace = true});
  auto h = eng.register_data();
  eng.submit([] {}, {write(h)}, 0, label.c_str());
  eng.wait_all();
  std::ostringstream out;
  trace_to_json(eng.trace(), eng.graph(), out);
  const std::string json = out.str();

  // No raw control characters may survive anywhere in the document.
  for (const char c : json)
    ASSERT_FALSE(static_cast<unsigned char>(c) < 0x20 && c != '\n')
        << "raw control character 0x" << std::hex
        << int(static_cast<unsigned char>(c)) << " in output";

  const std::string key = "\"name\": \"";
  const std::size_t start = json.find(key);
  ASSERT_NE(start, std::string::npos);
  std::string decoded;
  std::size_t i = start + key.size();
  while (i < json.size() && json[i] != '"') {
    if (json[i] != '\\') {
      decoded += json[i++];
      continue;
    }
    ASSERT_LT(i + 1, json.size());
    const char e = json[i + 1];
    i += 2;
    switch (e) {
      case '"': decoded += '"'; break;
      case '\\': decoded += '\\'; break;
      case 'b': decoded += '\b'; break;
      case 'f': decoded += '\f'; break;
      case 'n': decoded += '\n'; break;
      case 'r': decoded += '\r'; break;
      case 't': decoded += '\t'; break;
      case 'u': {
        ASSERT_LE(i + 4, json.size());
        decoded += static_cast<char>(
            std::stoi(json.substr(i, 4), nullptr, 16));
        i += 4;
        break;
      }
      default: FAIL() << "unknown escape \\" << e;
    }
  }
  EXPECT_EQ(decoded, label);
}

TEST(Runtime, DuplicateEdgesAreDeduplicated) {
  Engine eng;
  auto h1 = eng.register_data();
  auto h2 = eng.register_data();
  eng.submit([] {}, {write(h1), write(h2)});
  // Second task depends on the first through BOTH handles: one edge only.
  eng.submit([] {}, {readwrite(h1), readwrite(h2)});
  eng.wait_all();
  EXPECT_EQ(eng.num_edges(), 1);
}

TEST(Runtime, InvalidHandleThrows) {
  Engine eng;
  EXPECT_THROW(eng.submit([] {}, {read(Handle{})}), Error);
  EXPECT_THROW(eng.submit([] {}, {read(Handle{99})}), Error);
}

TEST(Runtime, TiledLuDagShape) {
  // The paper's Fig. 1: a 3x3 tiled LU has 3 GETRF + 6+6... in total
  // 3 GETRF, 6 TRSM (wait: 2 block cols * ... ) - count: sum_k [1 + 2*(nt-k-1) +
  // (nt-k-1)^2] for nt=3: k=0: 1+4+4=9; k=1: 1+2+1=4; k=2: 1 -> 14 tasks.
  Engine eng;
  constexpr int nt = 3;
  Handle tiles[nt][nt];
  for (auto& row : tiles)
    for (auto& t : row) t = eng.register_data();
  for (int k = 0; k < nt; ++k) {
    eng.submit([] {}, {readwrite(tiles[k][k])}, 0, "getrf");
    for (int j = k + 1; j < nt; ++j)
      eng.submit([] {}, {read(tiles[k][k]), readwrite(tiles[k][j])}, 0,
                 "trsm");
    for (int i = k + 1; i < nt; ++i)
      eng.submit([] {}, {read(tiles[k][k]), readwrite(tiles[i][k])}, 0,
                 "trsm");
    for (int i = k + 1; i < nt; ++i)
      for (int j = k + 1; j < nt; ++j)
        eng.submit([] {},
                   {read(tiles[i][k]), read(tiles[k][j]),
                    readwrite(tiles[i][j])},
                   0, "gemm");
  }
  eng.wait_all();
  EXPECT_EQ(eng.num_tasks(), 14);
  EXPECT_GT(eng.num_edges(), 0);
}

TEST(Runtime, TaskExceptionSurfacesAtWaitAll) {
  Engine eng;
  auto h = eng.register_data();
  eng.submit([] { throw std::runtime_error("task boom"); }, {write(h)});
  EXPECT_THROW(eng.wait_all(), std::runtime_error);
}

TEST(Runtime, TaskExceptionSurfacesFromWorkerPool) {
  Engine eng({.num_workers = 4});
  auto h = eng.register_data();
  std::atomic<int> others{0};
  for (int i = 0; i < 20; ++i)
    eng.submit([&others] { ++others; }, {read(h)});
  eng.submit([] { throw std::logic_error("parallel boom"); },
             {readwrite(h)});
  EXPECT_THROW(eng.wait_all(), std::logic_error);
  EXPECT_EQ(others.load(), 20);  // the rest of the graph still drained
}

TEST(Runtime, TaskErrorIsRethrownExactlyOnce) {
  Engine eng({.num_workers = 2});
  auto h = eng.register_data();
  std::atomic<int> after{0};
  eng.submit([] { throw std::runtime_error("boom"); }, {readwrite(h)});
  for (int i = 0; i < 10; ++i)
    eng.submit([&after] { ++after; }, {readwrite(h)});
  EXPECT_THROW(eng.wait_all(), std::runtime_error);
  EXPECT_EQ(after.load(), 10);  // dependents drained despite the failure
  // The error was consumed: an empty follow-up epoch must not rethrow it.
  EXPECT_NO_THROW(eng.wait_all());
  // And the engine stays usable for a subsequent epoch.
  int x = 0;
  eng.submit([&x] { x = 5; }, {readwrite(h)});
  EXPECT_NO_THROW(eng.wait_all());
  EXPECT_EQ(x, 5);
}

TEST(Runtime, OnlyFirstOfMultipleTaskErrorsSurfaces) {
  Engine eng;  // one worker: deterministic execution order
  auto h = eng.register_data();
  eng.submit([] { throw std::runtime_error("first"); }, {readwrite(h)});
  eng.submit([] { throw std::logic_error("second"); }, {readwrite(h)});
  try {
    eng.wait_all();
    FAIL() << "expected the first task error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  EXPECT_NO_THROW(eng.wait_all());  // the second error is not queued up
}

TEST(Runtime, EngineUsableAfterTaskFailure) {
  Engine eng({.num_workers = 2});
  auto h = eng.register_data();
  eng.submit([] { throw std::runtime_error("boom"); }, {write(h)});
  EXPECT_THROW(eng.wait_all(), std::runtime_error);
  int x = 0;
  eng.submit([&x] { x = 7; }, {readwrite(h)});
  eng.wait_all();
  EXPECT_EQ(x, 7);
}

}  // namespace
}  // namespace hcham
