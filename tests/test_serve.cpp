// Serve subsystem tests: batched multi-RHS solve vs the per-column
// reference, multi-column iterative refinement, the bounded request queue
// (backpressure, close semantics, batch budget), and the SolverService
// end-to-end: futures, deadlines, fault propagation, concurrent clients,
// and the stats/JSON export.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bem/testcase.hpp"
#include "core/hchameleon.hpp"
#include "serve/solver_service.hpp"
#include "test_utils.hpp"

namespace hcham {
namespace {

using namespace std::chrono_literals;
using bem::FemBemProblem;
using core::TileHMatrix;
using core::TileHOptions;
using la::Matrix;
using rt::Engine;
using serve::BoundedRequestQueue;
using serve::PushResult;
using serve::ServiceOptions;
using serve::Session;
using serve::SessionOptions;
using serve::SolveStatus;
using serve::SolverService;

TileHOptions make_options(index_t nb, double eps) {
  TileHOptions opts;
  opts.tile_size = nb;
  opts.clustering.leaf_size = 32;
  opts.hmatrix.compression.eps = eps;
  return opts;
}

/// B = A * X0 through the compressed operator, columns of X0 random.
template <typename T>
Matrix<T> rhs_for(const TileHMatrix<T>& m, const Matrix<T>& x0) {
  Matrix<T> b(x0.rows(), x0.cols());
  for (index_t c = 0; c < x0.cols(); ++c) {
    std::vector<T> y(static_cast<std::size_t>(x0.rows()), T{});
    m.matvec(T{1}, x0.view().col(c), T{0}, y.data());
    la::unpack_column(y.data(), b.view(), c);
  }
  return b;
}

// ---------------------------------------------------------------------------
// Batched tiled solve.

TEST(BatchedSolve, MatchesPerColumnReference) {
  const index_t n = 600;
  FemBemProblem<double> problem(n, 1.0, 8.0);
  Engine engine({.num_workers = 2});
  const auto* p = &problem;
  auto gen = [p](index_t i, index_t j) { return p->entry(i, j); };
  auto m = TileHMatrix<double>::build(engine, problem.points(), gen,
                                      make_options(128, 1e-8));
  // RHS through the operator BEFORE factorization overwrites the tiles.
  std::vector<Matrix<double>> x0s, bs;
  for (index_t nrhs : {1, 3, 32}) {
    x0s.push_back(Matrix<double>::random(n, nrhs, 7 + nrhs));
    bs.push_back(rhs_for(m, x0s.back()));
  }
  m.factorize(engine);

  for (std::size_t t = 0; t < x0s.size(); ++t) {
    const Matrix<double>& x0 = x0s[t];
    const Matrix<double>& b = bs[t];
    const index_t nrhs = x0.cols();

    // Batched: all columns in one task graph, explicit narrow panels.
    Matrix<double> batched = Matrix<double>::from_view(b.cview());
    m.solve(engine, batched.view(), /*panel_width=*/4);

    // Reference: the old one-column-at-a-time path.
    Matrix<double> seq = Matrix<double>::from_view(b.cview());
    for (index_t c = 0; c < nrhs; ++c) {
      la::MatrixView<double> col(seq.view().col(c), n, 1, n);
      m.solve(engine, col);
    }

    // Same factors, same arithmetic per column up to panel-GEMM rounding.
    EXPECT_LT(testing::rel_diff<double>(batched.cview(), seq.cview()), 1e-10)
        << "nrhs=" << nrhs;
    EXPECT_LT(testing::rel_diff<double>(batched.cview(), x0.cview()), 1e-4)
        << "nrhs=" << nrhs;
  }
}

TEST(BatchedSolve, CholeskyMultiRhs) {
  const index_t n = 500;
  FemBemProblem<double> problem(n, 1.0, 8.0);
  Engine engine({.num_workers = 2});
  const auto* p = &problem;
  auto gen = [p](index_t i, index_t j) { return p->entry(i, j); };
  auto m = TileHMatrix<double>::build(engine, problem.points(), gen,
                                      make_options(128, 1e-8));
  Matrix<double> x0 = Matrix<double>::random(n, 8, 21);
  Matrix<double> b = rhs_for(m, x0);  // before the factors overwrite tiles
  m.factorize_cholesky(engine);
  Matrix<double> batched = Matrix<double>::from_view(b.cview());
  m.solve_cholesky(engine, batched.view(), /*panel_width=*/3);
  Matrix<double> seq = Matrix<double>::from_view(b.cview());
  for (index_t c = 0; c < 8; ++c) {
    la::MatrixView<double> col(seq.view().col(c), n, 1, n);
    m.solve_cholesky(engine, col);
  }
  EXPECT_LT(testing::rel_diff<double>(batched.cview(), seq.cview()), 1e-10);
  EXPECT_LT(testing::rel_diff<double>(batched.cview(), x0.cview()), 1e-4);
}

TEST(SolveRefined, MultiRhsPerColumnResiduals) {
  const index_t n = 500;
  FemBemProblem<double> problem(n, 1.0, 8.0);
  Engine engine({.num_workers = 2});
  const auto* p = &problem;
  auto gen = [p](index_t i, index_t j) { return p->entry(i, j); };
  const auto opts = make_options(128, 1e-4);  // loose: refinement matters
  auto m = TileHMatrix<double>::build(engine, problem.points(), gen, opts);
  auto op = TileHMatrix<double>::build(engine, problem.points(), gen, opts);
  m.factorize(engine);

  Matrix<double> x0 = Matrix<double>::random(n, 3, 5);
  Matrix<double> b = rhs_for(op, x0);
  auto rr = core::solve_refined(m, op, engine, b.view(), /*max_iters=*/4,
                                /*target_residual=*/1e-12);
  ASSERT_EQ(rr.column_residuals.size(), 3u);
  double maxres = 0.0;
  for (double r : rr.column_residuals) maxres = std::max(maxres, r);
  EXPECT_DOUBLE_EQ(rr.final_residual, maxres);
  EXPECT_LT(rr.final_residual, 1e-10);
  EXPECT_LT(testing::rel_diff<double>(b.cview(), x0.cview()), 1e-8);
}

TEST(SolveRefined, SingleColumnSignatureStillWorks) {
  const index_t n = 400;
  FemBemProblem<double> problem(n, 1.0, 8.0);
  Engine engine({.num_workers = 1});
  const auto* p = &problem;
  auto gen = [p](index_t i, index_t j) { return p->entry(i, j); };
  const auto opts = make_options(128, 1e-6);
  auto m = TileHMatrix<double>::build(engine, problem.points(), gen, opts);
  auto op = TileHMatrix<double>::build(engine, problem.points(), gen, opts);
  m.factorize(engine);
  Matrix<double> x0 = Matrix<double>::random(n, 1, 13);
  Matrix<double> b = rhs_for(op, x0);
  // The pre-existing call shape: no panel_width, defaulted iters.
  auto rr = core::solve_refined(m, op, engine, b.view());
  EXPECT_EQ(rr.column_residuals.size(), 1u);
  EXPECT_LT(rr.final_residual, 1e-9);
}

// ---------------------------------------------------------------------------
// Bounded request queue.

TEST(RequestQueue, FailsFastWhenFullAndKeepsItem) {
  BoundedRequestQueue<std::unique_ptr<int>> q(2);
  auto a = std::make_unique<int>(1);
  auto b = std::make_unique<int>(2);
  auto c = std::make_unique<int>(3);
  EXPECT_EQ(q.push(a), PushResult::Ok);
  EXPECT_EQ(q.push(b), PushResult::Ok);
  EXPECT_EQ(q.push(c), PushResult::Full);
  // Backpressure must NOT consume the rejected item.
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(*c, 3);
  EXPECT_EQ(q.size(), 2);
}

TEST(RequestQueue, CloseDrainsThenStops) {
  BoundedRequestQueue<int> q(4);
  int x = 1, y = 2;
  ASSERT_EQ(q.push(x), PushResult::Ok);
  ASSERT_EQ(q.push(y), PushResult::Ok);
  q.close();
  int z = 3;
  EXPECT_EQ(q.push(z), PushResult::Closed);
  auto cost1 = [](const int&) { return index_t{1}; };
  auto batch = q.pop_batch(10, 0us, cost1);
  EXPECT_EQ(batch.size(), 2u);  // graceful drain
  EXPECT_TRUE(q.pop_batch(10, 0us, cost1).empty());
}

TEST(RequestQueue, BatchRespectsColumnBudget) {
  BoundedRequestQueue<int> q(8);
  for (int v : {1, 1, 1, 1, 1}) q.push(v);
  auto cost1 = [](const int&) { return index_t{1}; };
  EXPECT_EQ(q.pop_batch(3, 0us, cost1).size(), 3u);
  EXPECT_EQ(q.pop_batch(3, 0us, cost1).size(), 2u);

  // An oversized first item ships alone rather than deadlocking.
  int big = 5, small = 1;
  q.push(big);
  q.push(small);
  auto costv = [](const int& v) { return static_cast<index_t>(v); };
  auto batch = q.pop_batch(3, 0us, costv);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.front(), 5);
}

// ---------------------------------------------------------------------------
// SolverService end-to-end.

template <typename T>
struct ServiceFixture {
  FemBemProblem<T> problem;
  Session<T> session;

  explicit ServiceFixture(index_t n, SessionOptions so = {},
                          double eps = 1e-8)
      : problem(n, 1.0, 8.0),
        session(Session<T>::build(
            problem.points(),
            [p = &problem](index_t i, index_t j) { return p->entry(i, j); },
            make_options(128, eps), so)) {}
};

TEST(SolverService, SolvesAndAccounts) {
  SessionOptions so;
  so.workers = 2;
  so.refine_iters = 2;
  ServiceFixture<double> f(400, so);
  const index_t n = f.session.size();

  Matrix<double> x0 = Matrix<double>::random(n, 5, 3);
  // RHS through the factored session operator's matvec is not exposed;
  // build them via a throwaway unfactorized copy of the same kernel.
  Engine tmp_engine({.num_workers = 1});
  auto op = TileHMatrix<double>::build(
      tmp_engine, f.problem.points(),
      [p = &f.problem](index_t i, index_t j) { return p->entry(i, j); },
      make_options(128, 1e-8));
  Matrix<double> b = rhs_for(op, x0);

  ServiceOptions opts;
  opts.max_batch_cols = 8;
  opts.batch_window = 500us;
  SolverService<double> svc(f.session, opts);

  std::vector<std::future<serve::SolveReply<double>>> futs;
  for (index_t c = 0; c < 5; ++c) {
    Matrix<double> rhs(n, 1);
    la::copy_column(b.cview(), c, rhs.view(), 0);
    futs.push_back(svc.submit(std::move(rhs)));
  }
  for (index_t c = 0; c < 5; ++c) {
    auto rep = futs[static_cast<std::size_t>(c)].get();
    ASSERT_EQ(rep.status, SolveStatus::Ok) << rep.error;
    EXPECT_GE(rep.batch_cols, 1);
    EXPECT_GT(rep.latency_s, 0.0);
    EXPECT_LT(rep.residual, 1e-10);
    Matrix<double> want(n, 1);
    la::copy_column(x0.cview(), c, want.view(), 0);
    EXPECT_LT(testing::rel_diff<double>(rep.x.cview(), want.cview()), 1e-7);
  }
  svc.stop();
  auto s = svc.stats();
  EXPECT_EQ(s.submitted, 5u);
  EXPECT_EQ(s.completed, 5u);
  EXPECT_EQ(s.solved_columns, 5u);
  EXPECT_GE(s.batches, 1u);
  EXPECT_EQ(s.rejected + s.timed_out + s.failed, 0u);
  EXPECT_GT(s.p50_s, 0.0);
  EXPECT_LE(s.p50_s, s.p99_s);

  // Submitting after stop() is a typed reply, not a broken future.
  Matrix<double> late(n, 1);
  late.view().fill(1.0);
  EXPECT_EQ(svc.submit(std::move(late)).get().status,
            SolveStatus::ShuttingDown);
}

TEST(SolverService, DeadlineExpiresInQueue) {
  ServiceFixture<double> f(300);
  const index_t n = f.session.size();

  ServiceOptions opts;
  opts.max_batch_cols = 1;  // one request per batch
  opts.batch_window = 0us;
  std::atomic<bool> first{true};
  opts.inject_fault = [&first] {
    if (first.exchange(false)) std::this_thread::sleep_for(100ms);
  };
  SolverService<double> svc(f.session, opts);

  Matrix<double> r1(n, 1);
  r1.view().fill(1.0);
  auto f1 = svc.submit(std::move(r1));
  // Wait until the service thread has claimed r1 and is sleeping in the
  // fault hook, so r2 is guaranteed to sit in the queue past its deadline.
  while (svc.queue_size() != 0) std::this_thread::yield();
  Matrix<double> r2(n, 1);
  r2.view().fill(1.0);
  auto f2 = svc.submit(std::move(r2), /*deadline=*/1ms);

  EXPECT_EQ(f1.get().status, SolveStatus::Ok);
  auto rep2 = f2.get();
  EXPECT_EQ(rep2.status, SolveStatus::Timeout);
  EXPECT_FALSE(rep2.error.empty());
  svc.stop();
  EXPECT_EQ(svc.stats().timed_out, 1u);
}

TEST(SolverService, BackpressureRejectsWhenFull) {
  ServiceFixture<double> f(300);
  const index_t n = f.session.size();

  ServiceOptions opts;
  opts.queue_capacity = 2;
  opts.max_batch_cols = 1;
  opts.batch_window = 0us;
  std::atomic<bool> first{true};
  opts.inject_fault = [&first] {
    if (first.exchange(false)) std::this_thread::sleep_for(100ms);
  };
  SolverService<double> svc(f.session, opts);

  auto make_rhs = [n] {
    Matrix<double> r(n, 1);
    r.view().fill(1.0);
    return r;
  };
  auto f1 = svc.submit(make_rhs());
  while (svc.queue_size() != 0) std::this_thread::yield();  // r1 claimed
  auto f2 = svc.submit(make_rhs());
  auto f3 = svc.submit(make_rhs());
  auto f4 = svc.submit(make_rhs());  // queue holds {r2, r3}: full

  auto rep4 = f4.get();
  EXPECT_EQ(rep4.status, SolveStatus::Rejected);
  EXPECT_EQ(rep4.error, "queue full");
  EXPECT_EQ(f1.get().status, SolveStatus::Ok);
  EXPECT_EQ(f2.get().status, SolveStatus::Ok);
  EXPECT_EQ(f3.get().status, SolveStatus::Ok);
  svc.stop();
  EXPECT_EQ(svc.stats().rejected, 1u);
}

TEST(SolverService, SolverFaultPropagatesAndServiceSurvives) {
  ServiceFixture<double> f(300);
  const index_t n = f.session.size();

  ServiceOptions opts;
  opts.max_batch_cols = 8;
  opts.batch_window = 50ms;  // coalesce both requests into the faulty batch
  std::atomic<int> calls{0};
  opts.inject_fault = [&calls] {
    if (calls.fetch_add(1) == 0) throw std::runtime_error("injected fault");
  };
  SolverService<double> svc(f.session, opts);

  auto make_rhs = [n] {
    Matrix<double> r(n, 1);
    r.view().fill(1.0);
    return r;
  };
  auto f1 = svc.submit(make_rhs());
  auto f2 = svc.submit(make_rhs());
  auto r1 = f1.get();
  auto r2 = f2.get();
  EXPECT_EQ(r1.status, SolveStatus::Failed);
  EXPECT_EQ(r2.status, SolveStatus::Failed);
  EXPECT_EQ(r1.error, "injected fault");
  EXPECT_GT(r1.batch_cols, 0);

  // The batching thread must survive the fault and keep serving.
  auto f3 = svc.submit(make_rhs());
  EXPECT_EQ(f3.get().status, SolveStatus::Ok);
  svc.stop();
  EXPECT_EQ(svc.stats().failed, 2u);
  EXPECT_EQ(svc.stats().completed, 1u);
}

TEST(SolverService, ConcurrentClientsStress) {
  SessionOptions so;
  so.workers = 2;
  ServiceFixture<double> f(300, so);
  const index_t n = f.session.size();

  ServiceOptions opts;
  opts.queue_capacity = 128;
  opts.max_batch_cols = 8;
  opts.batch_window = 200us;
  SolverService<double> svc(f.session, opts);

  constexpr int kClients = 4;
  constexpr int kPerClient = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&svc, &ok, n, t] {
      for (int i = 0; i < kPerClient; ++i) {
        Matrix<double> rhs =
            Matrix<double>::random(n, 1, static_cast<std::uint64_t>(
                                             100 * t + i + 1));
        auto rep = svc.submit(std::move(rhs)).get();
        if (rep.status == SolveStatus::Ok) ok.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  svc.stop();

  EXPECT_EQ(ok.load(), kClients * kPerClient);
  auto s = svc.stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(s.solved_columns,
            static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_GE(s.batches, 1u);
  EXPECT_LE(s.batches, s.solved_columns);
  EXPECT_GE(s.queue_peak, 0);
}

// ---------------------------------------------------------------------------
// Stats.

TEST(Stats, HistogramQuantilesAreOrderedAndSane) {
  serve::LatencyHistogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
  for (int i = 0; i < 100; ++i) h.record(1e-3);  // 1 ms
  EXPECT_EQ(h.total(), 100u);
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 0.5e-3);
  EXPECT_LE(p50, 2.1e-3);
  EXPECT_LE(h.quantile(0.5), h.quantile(0.95));
  EXPECT_LE(h.quantile(0.95), h.quantile(0.99));
  // A slow outlier moves the tail but not the median bucket.
  for (int i = 0; i < 5; ++i) h.record(0.5);
  EXPECT_LT(h.quantile(0.5), 0.01);
  EXPECT_GT(h.quantile(0.99), 0.1);
}

TEST(Stats, JsonExportHasStableKeys) {
  serve::ServiceStats st;
  st.on_submit();
  st.on_completed(2e-3);
  st.on_batch(3);
  st.queue_depth(2);
  const std::string j = serve::to_json(st.snapshot());
  for (const char* key :
       {"\"submitted\":1", "\"completed\":1", "\"batches\":1",
        "\"solved_columns\":3", "\"queue\":{", "\"depth\":2", "\"peak\":2",
        "\"latency_s\":{", "\"p50\":", "\"p95\":", "\"p99\":",
        "\"mean_batch_cols\":3"}) {
    EXPECT_NE(j.find(key), std::string::npos) << key << " missing in " << j;
  }
}

}  // namespace
}  // namespace hcham
