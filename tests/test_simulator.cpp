// Simulator tests: conservation laws (1-worker makespan = total work,
// P-worker makespan bounded by critical path and work/P), policy behaviour,
// and overhead modelling.
#include <gtest/gtest.h>

#include "runtime/engine.hpp"
#include "runtime/simulator.hpp"

namespace hcham {
namespace {

using rt::SchedulerPolicy;
using rt::SimParams;
using rt::simulate;
using rt::TaskGraph;

/// Handcrafted graph builder (no engine needed).
TaskGraph make_graph(
    const std::vector<double>& durations,
    const std::vector<std::pair<rt::TaskId, rt::TaskId>>& edges,
    const std::vector<int>& priorities = {}) {
  TaskGraph g;
  g.nodes.resize(durations.size());
  for (std::size_t i = 0; i < durations.size(); ++i) {
    g.nodes[i].duration_s = durations[i];
    g.nodes[i].priority =
        priorities.empty() ? 0 : priorities[i];
    g.nodes[i].label = "t" + std::to_string(i);
  }
  for (auto [from, to] : edges) {
    g.nodes[static_cast<std::size_t>(from)].successors.push_back(to);
    ++g.nodes[static_cast<std::size_t>(to)].num_dependencies;
  }
  return g;
}

constexpr SimParams kNoOverhead{0.0, 0.0};

TEST(Simulator, EmptyGraph) {
  TaskGraph g;
  auto r = simulate(g, SchedulerPolicy::Priority, 4, kNoOverhead);
  EXPECT_EQ(r.makespan_s, 0.0);
}

TEST(Simulator, SingleWorkerMakespanIsTotalWork) {
  auto g = make_graph({1.0, 2.0, 3.0}, {});
  for (auto policy : {SchedulerPolicy::WorkStealing,
                      SchedulerPolicy::LocalityWorkStealing,
                      SchedulerPolicy::Priority}) {
    auto r = simulate(g, policy, 1, kNoOverhead);
    EXPECT_DOUBLE_EQ(r.makespan_s, 6.0) << rt::to_string(policy);
  }
}

TEST(Simulator, IndependentTasksScalePerfectly) {
  std::vector<double> d(64, 1.0);
  auto g = make_graph(d, {});
  for (auto policy : {SchedulerPolicy::WorkStealing,
                      SchedulerPolicy::LocalityWorkStealing,
                      SchedulerPolicy::Priority}) {
    auto r = simulate(g, policy, 8, kNoOverhead);
    EXPECT_DOUBLE_EQ(r.makespan_s, 8.0) << rt::to_string(policy);
    EXPECT_NEAR(r.parallel_efficiency(), 1.0, 1e-12);
  }
}

TEST(Simulator, ChainCannotScale) {
  auto g = make_graph({1.0, 1.0, 1.0, 1.0},
                      {{0, 1}, {1, 2}, {2, 3}});
  auto r = simulate(g, SchedulerPolicy::Priority, 16, kNoOverhead);
  EXPECT_DOUBLE_EQ(r.makespan_s, 4.0);
  EXPECT_DOUBLE_EQ(g.critical_path_s(), 4.0);
}

TEST(Simulator, MakespanRespectsLowerBounds) {
  // Random-ish layered DAG: makespan >= max(critical path, work / P).
  std::vector<double> d;
  std::vector<std::pair<rt::TaskId, rt::TaskId>> e;
  for (int layer = 0; layer < 6; ++layer)
    for (int i = 0; i < 10; ++i) {
      const rt::TaskId id = layer * 10 + i;
      d.push_back(0.1 + 0.01 * static_cast<double>(i));
      if (layer > 0) e.push_back({(layer - 1) * 10 + (i + 3) % 10, id});
    }
  auto g = make_graph(d, e);
  for (int p : {1, 2, 4, 8}) {
    auto r = simulate(g, SchedulerPolicy::Priority, p, kNoOverhead);
    EXPECT_GE(r.makespan_s, g.critical_path_s() - 1e-12);
    EXPECT_GE(r.makespan_s,
              g.total_work_s() / static_cast<double>(p) - 1e-12);
    EXPECT_LE(r.makespan_s, g.total_work_s() + 1e-12);
  }
}

TEST(Simulator, MoreWorkersNeverSlowerOnWideGraphs) {
  std::vector<double> d(100, 1.0);
  auto g = make_graph(d, {});
  double prev = 1e30;
  for (int p : {1, 2, 4, 8, 16}) {
    auto r = simulate(g, SchedulerPolicy::Priority, p, kNoOverhead);
    EXPECT_LE(r.makespan_s, prev + 1e-12);
    prev = r.makespan_s;
  }
}

TEST(Simulator, PriorityPolicyRunsUrgentTasksFirst) {
  // Two ready tasks, one worker: the higher-priority one must run first,
  // which matters because it unlocks a long chain.
  auto g = make_graph({1.0, 1.0, 10.0}, {{1, 2}}, {0, 5, 0});
  auto r = simulate(g, SchedulerPolicy::Priority, 1, kNoOverhead);
  // t1 (prio 5) runs first, then t0 and t2 in some order; makespan 12 either
  // way on one worker, but with two workers priority matters:
  auto r2 = simulate(g, SchedulerPolicy::Priority, 2, kNoOverhead);
  EXPECT_DOUBLE_EQ(r2.makespan_s, 11.0);  // t1 at 0-1, t2 at 1-11
  (void)r;
}

TEST(Simulator, TaskOverheadInflatesMakespan) {
  std::vector<double> d(10, 1.0e-3);
  auto g = make_graph(d, {});
  auto fast = simulate(g, SchedulerPolicy::Priority, 1, kNoOverhead);
  auto slow = simulate(g, SchedulerPolicy::Priority, 1,
                       SimParams{1.0e-3, 0.0});
  EXPECT_NEAR(slow.makespan_s, fast.makespan_s + 10.0e-3, 1e-12);
}

TEST(Simulator, EdgeOverheadPenalizesDenseDags) {
  // Same work, same shape, but one graph has 4x the dependency count
  // (modelling HMAT's fine-grain DAG vs Tile-H).
  auto sparse = make_graph({1e-3, 1e-3, 1e-3}, {{0, 2}, {1, 2}});
  auto dense = sparse;
  for (int extra = 0; extra < 6; ++extra) {
    dense.nodes[0].successors.push_back(2);
    ++dense.nodes[2].num_dependencies;
  }
  const SimParams params{0.0, 1.0e-4};
  auto rs = simulate(sparse, SchedulerPolicy::Priority, 2, params);
  auto rd = simulate(dense, SchedulerPolicy::Priority, 2, params);
  EXPECT_GT(rd.makespan_s, rs.makespan_s);
}

TEST(Simulator, PoliciesAgreeOnEmbarrassinglyParallelWork) {
  std::vector<double> d(32, 0.5);
  auto g = make_graph(d, {});
  const auto ws = simulate(g, SchedulerPolicy::WorkStealing, 4, kNoOverhead);
  const auto lws =
      simulate(g, SchedulerPolicy::LocalityWorkStealing, 4, kNoOverhead);
  const auto prio = simulate(g, SchedulerPolicy::Priority, 4, kNoOverhead);
  EXPECT_DOUBLE_EQ(ws.makespan_s, lws.makespan_s);
  EXPECT_DOUBLE_EQ(ws.makespan_s, prio.makespan_s);
}

TEST(Simulator, BusySecondsCountExecutionOnly) {
  // With a serialized dispatch cost, workers queue behind the runtime
  // before their task starts. That wait used to be folded into busy_s,
  // inflating parallel_efficiency exactly when contention was worst; it is
  // now reported separately.
  std::vector<double> d(16, 1.0);
  auto g = make_graph(d, {});
  SimParams p;
  p.task_overhead_s = 0.0;
  p.edge_overhead_s = 0.0;
  p.dispatch_serial_cost_s = 0.01;
  const auto r = simulate(g, SchedulerPolicy::Priority, 4, p);
  EXPECT_DOUBLE_EQ(r.busy_s, g.total_work_s());
  EXPECT_GT(r.dispatch_wait_s, 0.0);
  EXPECT_LT(r.parallel_efficiency(), 1.0);
  // No contention model, no wait.
  const auto r0 = simulate(g, SchedulerPolicy::Priority, 4, kNoOverhead);
  EXPECT_DOUBLE_EQ(r0.dispatch_wait_s, 0.0);
  EXPECT_NEAR(r0.parallel_efficiency(), 1.0, 1e-12);
}

TEST(Simulator, ReplaySubmissionModelIsFlatPerTask) {
  // DAG-replay submission (graph capture/replay): a flat rebind cost per
  // task, no per-edge inference. One worker, four independent 1s tasks,
  // 0.1s rebind each: t0 becomes ready at 0.1 and the worker never starves
  // again, so makespan = 0.1 + 4.0.
  std::vector<double> d(4, 1.0);
  auto g = make_graph(d, {});
  SimParams p = kNoOverhead;
  p.replay_submission = true;
  p.replay_submit_cost_s = 0.1;
  const auto r = simulate(g, SchedulerPolicy::Priority, 1, p);
  EXPECT_NEAR(r.makespan_s, 4.1, 1e-12);
}

TEST(Simulator, ReplaySubmissionIgnoresEdgeDensity) {
  // The live submission model charges per inbound edge; replay must not.
  // Two graphs with identical work and shape but 4x the dependency count
  // replay in exactly the same time (and faster than live submission).
  auto sparse = make_graph({1e-3, 1e-3, 1e-3}, {{0, 2}, {1, 2}});
  auto dense = sparse;
  for (int extra = 0; extra < 6; ++extra) {
    dense.nodes[0].successors.push_back(2);
    ++dense.nodes[2].num_dependencies;
  }
  SimParams live = kNoOverhead;
  live.submit_cost_s = 1e-4;
  live.edge_submit_cost_s = 1e-4;
  SimParams replay = live;
  replay.replay_submission = true;
  replay.replay_submit_cost_s = 1e-5;
  const auto rs = simulate(sparse, SchedulerPolicy::Priority, 2, replay);
  const auto rd = simulate(dense, SchedulerPolicy::Priority, 2, replay);
  EXPECT_DOUBLE_EQ(rs.makespan_s, rd.makespan_s);
  const auto ld = simulate(dense, SchedulerPolicy::Priority, 2, live);
  EXPECT_LT(rd.makespan_s, ld.makespan_s);
}

TEST(Simulator, EngineSeedingMatchesSimulatorAcrossEpochs) {
  // simulate() restarts its round-robin seed cursor at worker 0 on every
  // call, so after pushing k initially-ready tasks the cursor sits at
  // k % P. The engine must do the same on every wait_all() epoch — the
  // cursor used to persist across epochs, silently diverging the engine's
  // ws/lws seeding from the simulator's replay on multi-epoch programs.
  constexpr int kWorkers = 2;
  rt::Engine eng({.num_workers = kWorkers,
                  .policy = SchedulerPolicy::WorkStealing});
  std::vector<rt::Handle> hs;
  for (int i = 0; i < 3; ++i) hs.push_back(eng.register_data());
  // Epoch 1: three independent (initially-ready) tasks.
  for (int i = 0; i < 3; ++i)
    eng.submit([] {}, {readwrite(hs[static_cast<std::size_t>(i)])});
  eng.wait_all();
  EXPECT_EQ(eng.seed_cursor(), 3 % kWorkers);
  // Epoch 2: two ready tasks. A fresh simulate() of this sub-DAG would
  // push 2 seeds starting from worker 0, leaving its cursor at 2 % P = 0;
  // the engine must agree instead of continuing from the last epoch.
  for (int i = 0; i < 2; ++i)
    eng.submit([] {}, {readwrite(hs[static_cast<std::size_t>(i)])});
  eng.wait_all();
  EXPECT_EQ(eng.seed_cursor(), 2 % kWorkers);
}

TEST(Simulator, ReplayedEpochSeedsLikeTheSimulator) {
  // A replayed epoch must leave the round-robin seed cursor exactly where
  // a live run (and hence a fresh simulate()) of the same DAG would: reset
  // to 0, then advanced once per initially-ready task.
  constexpr int kWorkers = 2;
  rt::Engine eng({.num_workers = kWorkers,
                  .policy = SchedulerPolicy::WorkStealing});
  std::vector<rt::Handle> hs;
  for (int i = 0; i < 3; ++i) hs.push_back(eng.register_data());
  ASSERT_TRUE(eng.begin_capture());
  for (int i = 0; i < 3; ++i)
    eng.submit([] {}, {readwrite(hs[static_cast<std::size_t>(i)])});
  eng.wait_all();
  auto g = eng.end_capture();
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(eng.seed_cursor(), 3 % kWorkers);
  eng.begin_replay(g);
  for (int i = 0; i < 3; ++i) eng.submit([] {}, {});
  eng.wait_all();
  EXPECT_EQ(eng.seed_cursor(), 3 % kWorkers);
}

TEST(Simulator, ReplayOfRealEngineGraph) {
  // Build a tiled-LU-shaped graph in the engine, execute it, then replay.
  rt::Engine eng;
  constexpr int nt = 4;
  rt::Handle tiles[nt][nt];
  for (auto& row : tiles)
    for (auto& t : row) t = eng.register_data();
  for (int k = 0; k < nt; ++k) {
    eng.submit([] {}, {readwrite(tiles[k][k])}, 3, "getrf");
    for (int j = k + 1; j < nt; ++j)
      eng.submit([] {}, {read(tiles[k][k]), readwrite(tiles[k][j])}, 2,
                 "trsm");
    for (int i = k + 1; i < nt; ++i)
      eng.submit([] {}, {read(tiles[k][k]), readwrite(tiles[i][k])}, 2,
                 "trsm");
    for (int i = k + 1; i < nt; ++i)
      for (int j = k + 1; j < nt; ++j)
        eng.submit([] {},
                   {read(tiles[i][k]), read(tiles[k][j]),
                    readwrite(tiles[i][j])},
                   1, "gemm");
  }
  eng.wait_all();
  auto g = eng.graph();
  // Give every task a synthetic 1ms duration for a deterministic replay.
  for (auto& node : g.nodes) node.duration_s = 1e-3;
  auto r1 = simulate(g, SchedulerPolicy::Priority, 1, kNoOverhead);
  auto r4 = simulate(g, SchedulerPolicy::Priority, 4, kNoOverhead);
  EXPECT_NEAR(r1.makespan_s, g.total_work_s(), 1e-12);
  EXPECT_LT(r4.makespan_s, r1.makespan_s);
  EXPECT_GE(r4.makespan_s, g.critical_path_s() - 1e-12);
}

}  // namespace
}  // namespace hcham
