// Stress and property tests: randomized task DAGs executed by the real
// engine vs a sequential referee, engine-vs-simulator consistency, and the
// H-matrix AXPY utility.
#include <gtest/gtest.h>

#include <cstdlib>
#include <mutex>

#include "common/rng.hpp"
#include "hmat_test_utils.hpp"
#include "hmatrix/haxpy.hpp"
#include "runtime/engine.hpp"
#include "runtime/simulator.hpp"

namespace hcham {
namespace {

using rt::Engine;
using rt::SchedulerPolicy;
using hcham::testing::HmatFixture;
using hcham::testing::hmat_options;
using hcham::testing::rel_diff;

/// Random DAG over `cells` shared registers: each task reads up to 3
/// random cells and read-modify-writes one, applying a deterministic
/// update. Any dependency-respecting execution gives the same final state.
class RandomDagStress
    : public ::testing::TestWithParam<std::tuple<SchedulerPolicy, int>> {};

TEST_P(RandomDagStress, ParallelMatchesSequentialReferee) {
  auto [policy, workers] = GetParam();
  constexpr int kCells = 12;
  constexpr int kTasks = 500;

  // Deterministic task plan (shared by both executions).
  struct Plan {
    int reads[3];
    int num_reads;
    int target;
    double coeff;
  };
  std::vector<Plan> plan;
  Rng rng(987);
  for (int t = 0; t < kTasks; ++t) {
    Plan p;
    p.num_reads = static_cast<int>(rng.uniform_index(3)) + 1;
    for (int r = 0; r < p.num_reads; ++r)
      p.reads[r] = static_cast<int>(rng.uniform_index(kCells));
    p.target = static_cast<int>(rng.uniform_index(kCells));
    p.coeff = rng.uniform(0.1, 0.9);
    plan.push_back(p);
  }

  auto apply = [&](std::vector<double>& cells, const Plan& p) {
    double acc = 0;
    for (int r = 0; r < p.num_reads; ++r) acc += cells[p.reads[r]];
    cells[p.target] = 0.5 * cells[p.target] + p.coeff * acc + 1.0;
  };

  // Sequential referee.
  std::vector<double> ref(kCells, 1.0);
  for (const Plan& p : plan) apply(ref, p);

  // Parallel execution.
  Engine eng({.num_workers = workers, .policy = policy});
  std::vector<rt::Handle> handles;
  for (int i = 0; i < kCells; ++i) handles.push_back(eng.register_data());
  std::vector<double> cells(kCells, 1.0);
  for (const Plan& p : plan) {
    std::vector<rt::Access> acc;
    for (int r = 0; r < p.num_reads; ++r)
      acc.push_back(rt::read(handles[p.reads[r]]));
    acc.push_back(rt::readwrite(handles[p.target]));
    eng.submit([&cells, &apply, &p] { apply(cells, p); }, std::move(acc),
               static_cast<int>(p.coeff * 10));
  }
  eng.wait_all();

  for (int i = 0; i < kCells; ++i)
    EXPECT_DOUBLE_EQ(cells[i], ref[i])
        << "cell " << i << " policy " << rt::to_string(policy) << " workers "
        << workers;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomDagStress,
    ::testing::Combine(::testing::Values(SchedulerPolicy::WorkStealing,
                                         SchedulerPolicy::LocalityWorkStealing,
                                         SchedulerPolicy::Priority),
                       ::testing::Values(2, 4, 8)));

TEST(SimulatorConsistency, SingleWorkerReplayMatchesMeasuredTotal) {
  // The 1-worker simulated makespan with zero overhead must equal the sum
  // of the measured durations, for any graph the engine produced.
  Engine eng;
  auto h1 = eng.register_data();
  auto h2 = eng.register_data();
  Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    const int spin = static_cast<int>(rng.uniform_index(500)) + 10;
    eng.submit(
        [spin] {
          volatile double x = 1.0;
          for (int k = 0; k < spin; ++k) x = x * 1.0000001;
        },
        {i % 2 == 0 ? rt::readwrite(h1) : rt::readwrite(h2)});
  }
  eng.wait_all();
  auto g = eng.graph();
  auto r = rt::simulate(g, SchedulerPolicy::Priority, 1, rt::SimParams{0, 0});
  EXPECT_NEAR(r.makespan_s, g.total_work_s(), 1e-12);
}

/// Multi-epoch drain with concurrent nested sub-epochs (DESIGN.md section
/// 11): successive parent epochs each run several tile-like tasks that
/// open forced-parallel sub-epochs with private random DAGs, interleaved
/// with ordinary dependent tasks, so pool workers steal across several
/// live sub-epochs while the parent graph is still draining. Every cell
/// must match the sequential referee in every epoch — and the engine must
/// drain cleanly every time (this is the ASan/UBSan soak for the nested
/// ownership and steal protocol).
TEST(NestedStress, MultiEpochDrainWithConcurrentSubEpochs) {
  ::setenv("HCHAM_NESTED_FORCE", "1", 1);
  constexpr int kEpochs = 8;
  constexpr int kParents = 6;
  constexpr int kCells = 4;
  constexpr int kNestedTasks = 40;

  struct Step {
    int src;
    int dst;
    double coeff;
  };
  auto draw_plan = [](Rng& rng) {
    std::vector<Step> plan;
    for (int t = 0; t < kNestedTasks; ++t) {
      const int src = static_cast<int>(rng.uniform_index(kCells));
      int dst = static_cast<int>(rng.uniform_index(kCells));
      if (dst == src) dst = (dst + 1) % kCells;
      plan.push_back(Step{src, dst, rng.uniform(0.1, 0.9)});
    }
    return plan;
  };
  auto apply = [](std::vector<double>& cells, const Step& s) {
    cells[static_cast<std::size_t>(s.dst)] +=
        s.coeff * cells[static_cast<std::size_t>(s.src)];
  };

  for (const SchedulerPolicy policy :
       {SchedulerPolicy::WorkStealing, SchedulerPolicy::Priority}) {
    Engine eng({.num_workers = 4, .policy = policy});
    for (int e = 0; e < kEpochs; ++e) {
      std::vector<std::vector<double>> cells(
          kParents, std::vector<double>(kCells, 1.0));
      std::vector<std::vector<Step>> plans;
      for (int p = 0; p < kParents; ++p) {
        Rng rng(static_cast<std::uint64_t>(1000 * e + p + 1));
        plans.push_back(draw_plan(rng));
      }

      // Per-parent: a pre-task, the sub-epoch task, and a post-task chained
      // on one handle, so nested stealing overlaps normal epoch scheduling.
      std::vector<int> post_ran(kParents, 0);
      for (int p = 0; p < kParents; ++p) {
        auto h = eng.register_data();
        eng.submit([] {}, {rt::readwrite(h)}, 1, "pre");
        eng.submit(
            [&eng, &cells, &plans, &apply, p] {
              rt::NestedEpoch ep(eng, 0.0);
              auto a = ep.register_data();
              for (const Step& s : plans[static_cast<std::size_t>(p)])
                ep.submit(
                    [&cells, &apply, p, s] {
                      apply(cells[static_cast<std::size_t>(p)], s);
                    },
                    {rt::readwrite(a)});
              ep.wait();
            },
            {rt::readwrite(h)}, 2, "sub-epoch");
        eng.submit([&post_ran, p] { post_ran[static_cast<std::size_t>(p)] = 1; },
                   {rt::read(h)}, 0, "post");
      }
      eng.wait_all();

      for (int p = 0; p < kParents; ++p) {
        std::vector<double> ref(kCells, 1.0);
        for (const Step& s : plans[static_cast<std::size_t>(p)]) apply(ref, s);
        EXPECT_EQ(post_ran[static_cast<std::size_t>(p)], 1);
        for (int i = 0; i < kCells; ++i)
          EXPECT_DOUBLE_EQ(cells[static_cast<std::size_t>(p)]
                                [static_cast<std::size_t>(i)],
                           ref[static_cast<std::size_t>(i)])
              << "epoch " << e << " parent " << p << " cell " << i
              << " policy " << rt::to_string(policy);
      }
    }
  }
  ::unsetenv("HCHAM_NESTED_FORCE");
}

TEST(Haxpy, MatchingStructures) {
  HmatFixture<double> fx(400);
  auto a = fx.build(hmat_options(1e-8));
  auto b = fx.build(hmat_options(1e-8));
  auto expected = b.to_dense();
  la::axpy(-0.5, a.to_dense().cview(), expected.view());
  hmat::haxpy(-0.5, a, b, rk::TruncationParams{1e-10, -1});
  EXPECT_LT(rel_diff<double>(b.to_dense().cview(), expected.cview()), 1e-8);
}

TEST(Haxpy, MismatchedStructures) {
  // A built with strong admissibility, B with none (all dense): the
  // fallback paths must still produce the right sum.
  HmatFixture<double> fx(300);
  auto a = fx.build(hmat_options(1e-8));
  hmat::HMatrixOptions dense_opts;
  dense_opts.admissibility = cluster::AdmissibilityCondition::none();
  auto b = hmat::build_hmatrix<double>(fx.tree, fx.tree->root(),
                                       fx.tree->root(), fx.generator(),
                                       dense_opts);
  auto expected = b.to_dense();
  la::axpy(2.0, a.to_dense().cview(), expected.view());
  hmat::haxpy(2.0, a, b, rk::TruncationParams{1e-10, -1});
  EXPECT_LT(rel_diff<double>(b.to_dense().cview(), expected.cview()), 1e-8);
}

TEST(Haxpy, SubdividedOntoRkLeaf) {
  // A (H, subdivided off-diagonal block) added onto B built with weak
  // admissibility (single Rk leaf at the same position).
  HmatFixture<double> fx(600, 32, 16.0);
  const auto& root = fx.tree->node(fx.tree->root());
  auto a = hmat::build_hmatrix<double>(fx.tree, root.child[0], root.child[1],
                                       fx.generator(), hmat_options(1e-8));
  hmat::HMatrixOptions weak;
  weak.admissibility = cluster::AdmissibilityCondition::weak();
  weak.compression.eps = 1e-8;
  auto b = hmat::build_hmatrix<double>(fx.tree, root.child[0], root.child[1],
                                       fx.generator(), weak);
  auto expected = b.to_dense();
  la::axpy(1.0, a.to_dense().cview(), expected.view());
  hmat::haxpy(1.0, a, b, rk::TruncationParams{1e-8, -1});
  EXPECT_LT(rel_diff<double>(b.to_dense().cview(), expected.cview()), 1e-6);
}

TEST(Haxpy, SelfCancellation) {
  HmatFixture<double> fx(300);
  auto a = fx.build(hmat_options(1e-8));
  auto b = fx.build(hmat_options(1e-8));
  hmat::haxpy(-1.0, a, b, rk::TruncationParams{1e-12, -1});
  EXPECT_LT(b.norm_fro(), 1e-10 * a.norm_fro());
}

}  // namespace
}  // namespace hcham
