// Tiled dense algorithms over the runtime: descriptor bookkeeping, the
// tiled LU of Algorithm 1, tiled GEMM, and the tiled solve, validated
// against straight dense computations for every scheduler policy.
#include <gtest/gtest.h>

#include "la/la.hpp"
#include "runtime/engine.hpp"
#include "test_utils.hpp"
#include "tile/algorithms.hpp"

namespace hcham {
namespace {

using la::Matrix;
using la::Op;
using rt::Engine;
using rt::SchedulerPolicy;
using tile::TileDesc;
using tile::TileFormat;
using hcham::testing::diagonally_dominant;
using hcham::testing::rel_diff;
using hcham::testing::zdouble;

constexpr rk::TruncationParams kTp{1e-12, -1};

TEST(TileDesc, ShapesAndOffsets) {
  Engine eng;
  TileDesc<double> d(eng, 100, 100, 32);
  EXPECT_EQ(d.mt(), 4);
  EXPECT_EQ(d.nt(), 4);
  EXPECT_EQ(d.tile_rows(0), 32);
  EXPECT_EQ(d.tile_rows(3), 4);  // 100 - 96
  EXPECT_EQ(d.row_offset(2), 64);
  EXPECT_EQ(d.tile(3, 3).m, 4);
  EXPECT_EQ(d.tile(3, 3).n, 4);
}

TEST(TileDesc, ExactlyDivisibleGrid) {
  Engine eng;
  TileDesc<double> d(eng, 128, 64, 32);
  EXPECT_EQ(d.mt(), 4);
  EXPECT_EQ(d.nt(), 2);
  for (index_t i = 0; i < 4; ++i) EXPECT_EQ(d.tile_rows(i), 32);
}

TEST(TileDesc, DenseRoundTrip) {
  Engine eng;
  auto a = Matrix<double>::random(75, 75, 5);
  TileDesc<double> d(eng, 75, 75, 20);
  d.fill_dense(a.cview());
  EXPECT_EQ(rel_diff<double>(d.to_dense().cview(), a.cview()), 0.0);
  EXPECT_EQ(d.stored_elements(), 75 * 75);
  EXPECT_DOUBLE_EQ(d.compression_ratio(), 1.0);
}

TEST(TileDesc, HandlesAreDistinct) {
  Engine eng;
  TileDesc<double> d(eng, 64, 64, 16);
  std::set<index_t> ids;
  for (index_t i = 0; i < 4; ++i)
    for (index_t j = 0; j < 4; ++j) ids.insert(d.handle(i, j).id);
  EXPECT_EQ(ids.size(), 16u);
}

class TiledLu
    : public ::testing::TestWithParam<std::tuple<SchedulerPolicy, int>> {};

TEST_P(TiledLu, MatchesDenseFactorization) {
  auto [policy, workers] = GetParam();
  Engine eng({.num_workers = workers, .policy = policy});
  auto a = diagonally_dominant<double>(120, 7);
  TileDesc<double> d(eng, 120, 120, 32);
  d.fill_dense(a.cview());
  tile::tiled_getrf(eng, d, kTp);
  eng.wait_all();

  auto ref = Matrix<double>::from_view(a.cview());
  ASSERT_EQ(la::getrf_nopiv(ref.view()), 0);
  EXPECT_LT(rel_diff<double>(d.to_dense().cview(), ref.cview()), 1e-12)
      << rt::to_string(policy) << " workers=" << workers;
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndWorkers, TiledLu,
    ::testing::Combine(::testing::Values(SchedulerPolicy::WorkStealing,
                                         SchedulerPolicy::LocalityWorkStealing,
                                         SchedulerPolicy::Priority),
                       ::testing::Values(1, 2, 4)));

TEST(TiledGetrf, ComplexMatrix) {
  Engine eng({.num_workers = 2});
  auto a = diagonally_dominant<zdouble>(90, 11);
  TileDesc<zdouble> d(eng, 90, 90, 25);
  d.fill_dense(a.cview());
  tile::tiled_getrf(eng, d, kTp);
  eng.wait_all();
  auto ref = Matrix<zdouble>::from_view(a.cview());
  ASSERT_EQ(la::getrf_nopiv(ref.view()), 0);
  EXPECT_LT(rel_diff<zdouble>(d.to_dense().cview(), ref.cview()), 1e-12);
}

TEST(TiledGetrf, SingleTileDegenerates) {
  Engine eng;
  auto a = diagonally_dominant<double>(30, 13);
  TileDesc<double> d(eng, 30, 30, 64);
  d.fill_dense(a.cview());
  EXPECT_EQ(d.nt(), 1);
  tile::tiled_getrf(eng, d, kTp);
  eng.wait_all();
  auto ref = Matrix<double>::from_view(a.cview());
  ASSERT_EQ(la::getrf_nopiv(ref.view()), 0);
  EXPECT_LT(rel_diff<double>(d.to_dense().cview(), ref.cview()), 1e-13);
}

TEST(TiledGetrf, DagMatchesFig1Census) {
  // For a 3x3 tile grid: 3 GETRF + 6 TRSM + 5 GEMM... exact counts:
  // k=0: 1+2+2+4, k=1: 1+1+1+1, k=2: 1 -> total 14 tasks (paper Fig. 1).
  Engine eng;
  TileDesc<double> d(eng, 96, 96, 32);
  d.fill_dense(diagonally_dominant<double>(96, 17).cview());
  tile::tiled_getrf(eng, d, kTp);
  EXPECT_EQ(eng.num_tasks(), 14);
  eng.wait_all();
  auto g = eng.graph();
  index_t getrf = 0, trsm = 0, gemm = 0;
  for (const auto& n : g.nodes) {
    if (n.label == "getrf") ++getrf;
    if (n.label == "trsm") ++trsm;
    if (n.label == "gemm") ++gemm;
  }
  EXPECT_EQ(getrf, 3);
  EXPECT_EQ(trsm, 6);
  EXPECT_EQ(gemm, 5);
}

TEST(TiledGemm, MatchesDense) {
  Engine eng({.num_workers = 3});
  auto a = Matrix<double>::random(80, 60, 3);
  auto b = Matrix<double>::random(60, 70, 4);
  auto c = Matrix<double>::random(80, 70, 5);
  TileDesc<double> da(eng, 80, 60, 25), db(eng, 60, 70, 25),
      dc(eng, 80, 70, 25);
  da.fill_dense(a.cview());
  db.fill_dense(b.cview());
  dc.fill_dense(c.cview());
  tile::tiled_gemm(eng, 2.0, da, db, -1.0, dc, kTp);
  eng.wait_all();
  auto ref = Matrix<double>::from_view(c.cview());
  la::gemm(Op::NoTrans, Op::NoTrans, 2.0, a.cview(), b.cview(), -1.0,
           ref.view());
  EXPECT_LT(rel_diff<double>(dc.to_dense().cview(), ref.cview()), 1e-13);
}

TEST(TiledGetrs, SolvesAfterTiledLu) {
  Engine eng({.num_workers = 2});
  auto a = diagonally_dominant<double>(110, 19);
  TileDesc<double> d(eng, 110, 110, 30);
  d.fill_dense(a.cview());
  tile::tiled_getrf(eng, d, kTp);
  eng.wait_all();

  auto x0 = Matrix<double>::random(110, 2, 21);
  Matrix<double> b(110, 2);
  la::gemm(Op::NoTrans, Op::NoTrans, 1.0, a.cview(), x0.cview(), 0.0,
           b.view());
  tile::tiled_getrs(eng, d, b.view());
  eng.wait_all();
  EXPECT_LT(rel_diff<double>(b.cview(), x0.cview()), 1e-10);
}

TEST(TiledGetrs, ComplexSolve) {
  Engine eng({.num_workers = 4, .policy = SchedulerPolicy::WorkStealing});
  auto a = diagonally_dominant<zdouble>(77, 23);
  TileDesc<zdouble> d(eng, 77, 77, 20);
  d.fill_dense(a.cview());
  tile::tiled_getrf(eng, d, kTp);
  eng.wait_all();
  auto x0 = Matrix<zdouble>::random(77, 1, 25);
  Matrix<zdouble> b(77, 1);
  la::gemm(Op::NoTrans, Op::NoTrans, zdouble(1), a.cview(), x0.cview(),
           zdouble(0), b.view());
  tile::tiled_getrs(eng, d, b.view());
  eng.wait_all();
  EXPECT_LT(rel_diff<zdouble>(b.cview(), x0.cview()), 1e-10);
}

}  // namespace
}  // namespace hcham
