// End-to-end tests of the Tile-H matrix (H-Chameleon): construction,
// approximation, compression, task-parallel LU and solve across scheduler
// policies, matvec, and forward error at the paper's accuracy.
#include <gtest/gtest.h>

#include "bem/testcase.hpp"
#include "core/hchameleon.hpp"
#include "test_utils.hpp"

namespace hcham {
namespace {

using bem::FemBemProblem;
using core::TileHMatrix;
using core::TileHOptions;
using la::Matrix;
using la::Op;
using rt::Engine;
using rt::SchedulerPolicy;
using hcham::testing::rel_diff;
using hcham::testing::zdouble;

TileHOptions make_options(index_t nb, double eps) {
  TileHOptions opts;
  opts.tile_size = nb;
  opts.clustering.leaf_size = 32;
  opts.hmatrix.compression.eps = eps;
  return opts;
}

template <typename T>
struct TileHSetup {
  FemBemProblem<T> problem;
  Engine engine;

  explicit TileHSetup(index_t n, int workers = 1)
      : problem(n, 1.0, 8.0), engine(rt::Engine::Options{workers}) {}

  auto gen() const {
    const FemBemProblem<T>* p = &problem;
    return [p](index_t i, index_t j) { return p->entry(i, j); };
  }

  TileHMatrix<T> build(index_t nb, double eps) {
    return TileHMatrix<T>::build(engine, problem.points(), gen(),
                                 make_options(nb, eps));
  }
};

TEST(TileH, GridShapeMatchesClustering) {
  TileHSetup<double> s(600);
  auto m = s.build(128, 1e-6);
  EXPECT_EQ(m.size(), 600);
  EXPECT_EQ(m.num_tiles(), 5);  // ceil(600/128)
  EXPECT_EQ(m.desc().nt(), 5);
  EXPECT_EQ(m.block(0, 0).rows(), 128);
  EXPECT_EQ(m.block(4, 4).rows(), 600 - 4 * 128);
}

TEST(TileH, ApproximatesKernelMatrix) {
  TileHSetup<double> s(500);
  auto m = s.build(128, 1e-6);
  auto exact = s.problem.dense();
  EXPECT_LT(rel_diff<double>(m.to_dense_original().cview(), exact.cview()),
            1e-4);
}

TEST(TileH, ComplexApproximation) {
  TileHSetup<zdouble> s(400);
  auto m = s.build(128, 1e-6);
  auto exact = s.problem.dense();
  EXPECT_LT(rel_diff<zdouble>(m.to_dense_original().cview(), exact.cview()),
            1e-4);
}

TEST(TileH, CompressesLargeProblems) {
  TileHSetup<double> s(3000);
  auto m = s.build(512, 1e-4);
  EXPECT_LT(m.compression_ratio(), 0.55);
}

TEST(TileH, OffDiagonalTilesCompressBetter) {
  TileHSetup<double> s(1024);
  auto m = s.build(256, 1e-4);
  const auto& far = m.block(0, 3);
  const auto& diag = m.block(0, 0);
  EXPECT_LT(far.compression_ratio(), diag.compression_ratio());
}

TEST(TileH, MatvecMatchesDense) {
  TileHSetup<double> s(450);
  auto m = s.build(128, 1e-8);
  auto exact = s.problem.dense();
  Rng rng(3);
  std::vector<double> x(450), y(450, 1.0), y_ref(450, 1.0);
  for (auto& v : x) v = rng.uniform(-1, 1);
  m.matvec(2.0, x.data(), -1.0, y.data());
  la::gemv<double>(Op::NoTrans, 2.0, exact.cview(), x.data(), -1.0,
                   y_ref.data());
  double err = 0, ref = 0;
  for (index_t i = 0; i < 450; ++i) {
    err += (y[i] - y_ref[i]) * (y[i] - y_ref[i]);
    ref += y_ref[i] * y_ref[i];
  }
  EXPECT_LT(std::sqrt(err / ref), 1e-6);
}

class TileHPolicies : public ::testing::TestWithParam<SchedulerPolicy> {};

TEST_P(TileHPolicies, FactorizeAndSolve) {
  FemBemProblem<double> problem(700, 1.0, 8.0);
  Engine engine({.num_workers = 4, .policy = GetParam()});
  const auto* p = &problem;
  auto gen = [p](index_t i, index_t j) { return p->entry(i, j); };
  auto m = TileHMatrix<double>::build(engine, problem.points(), gen,
                                      make_options(128, 1e-8));
  // RHS from a known solution, via the COMPRESSED operator.
  Rng rng(9);
  std::vector<double> x0(700);
  for (auto& v : x0) v = rng.uniform(-1, 1);
  std::vector<double> b(700, 0.0);
  m.matvec(1.0, x0.data(), 0.0, b.data());

  m.factorize(engine);
  la::MatrixView<double> bv(b.data(), 700, 1, 700);
  m.solve(engine, bv);

  double err = 0, ref = 0;
  for (index_t i = 0; i < 700; ++i) {
    err += (b[i] - x0[i]) * (b[i] - x0[i]);
    ref += x0[i] * x0[i];
  }
  EXPECT_LT(std::sqrt(err / ref), 1e-4) << rt::to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, TileHPolicies,
                         ::testing::Values(SchedulerPolicy::WorkStealing,
                                           SchedulerPolicy::LocalityWorkStealing,
                                           SchedulerPolicy::Priority));

TEST(TileH, ForwardErrorAtPaperAccuracy) {
  // eps = 1e-4 as in Fig. 5: forward error stays in the same magnitude.
  TileHSetup<double> s(800, 2);
  auto m = s.build(256, 1e-4);
  auto m2 = s.build(256, 1e-4);  // unfactored copy for the exact matvec
  m.factorize(s.engine);
  const double err = core::forward_error_solve(
      m, s.engine,
      [&m2](const double* x, double* y) { m2.matvec(1.0, x, 0.0, y); }, 42);
  EXPECT_LT(err, 5e-3);
}

TEST(TileH, ComplexFactorizeAndSolve) {
  TileHSetup<zdouble> s(500, 2);
  auto m = s.build(128, 1e-8);
  Rng rng(11);
  std::vector<zdouble> x0(500);
  for (auto& v : x0) v = rng.scalar<zdouble>();
  std::vector<zdouble> b(500, zdouble{});
  m.matvec(zdouble(1), x0.data(), zdouble(0), b.data());
  m.factorize(s.engine);
  la::MatrixView<zdouble> bv(b.data(), 500, 1, 500);
  m.solve(s.engine, bv);
  double err = 0, ref = 0;
  for (index_t i = 0; i < 500; ++i) {
    err += abs_sq(b[static_cast<std::size_t>(i)] -
                  x0[static_cast<std::size_t>(i)]);
    ref += abs_sq(x0[static_cast<std::size_t>(i)]);
  }
  EXPECT_LT(std::sqrt(err / ref), 1e-4);
}

TEST(TileH, LuTaskCountFollowsAlgorithm1) {
  TileHSetup<double> s(640);
  auto m = s.build(128, 1e-4);
  const index_t before = s.engine.num_tasks();
  m.factorize_submit(s.engine);
  const index_t nt = m.num_tiles();  // 5
  index_t expected = 0;
  for (index_t k = 0; k < nt; ++k) {
    const index_t r = nt - k - 1;
    expected += 1 + 2 * r + r * r;
  }
  EXPECT_EQ(s.engine.num_tasks() - before, expected);
  s.engine.wait_all();
}

TEST(TileH, TileSizeSweepPreservesAccuracy) {
  // Fig. 4/5 property: the tile size changes structure and compression but
  // not the approximation quality.
  TileHSetup<double> s(600);
  auto exact = s.problem.dense();
  for (index_t nb : {100, 200, 300, 600}) {
    auto m = s.build(nb, 1e-6);
    EXPECT_LT(rel_diff<double>(m.to_dense_original().cview(), exact.cview()),
              1e-4)
        << "nb=" << nb;
  }
}

}  // namespace
}  // namespace hcham
