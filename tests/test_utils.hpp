// Shared helpers for the gtest suites.
#pragma once

#include <gtest/gtest.h>

#include <complex>
#include <string>

#include "la/la.hpp"

namespace hcham::testing {

using zdouble = std::complex<double>;

/// Naive O(mnk) reference product: C = alpha * op(A) * op(B) + beta * C.
template <typename T>
void reference_gemm(la::Op opa, la::Op opb, T alpha, la::ConstMatrixView<T> a,
                    la::ConstMatrixView<T> b, T beta, la::MatrixView<T> c) {
  auto at = [&](index_t i, index_t j) -> T {
    switch (opa) {
      case la::Op::NoTrans: return a(i, j);
      case la::Op::Trans: return a(j, i);
      default: return conj_if(a(j, i));
    }
  };
  auto bt = [&](index_t i, index_t j) -> T {
    switch (opb) {
      case la::Op::NoTrans: return b(i, j);
      case la::Op::Trans: return b(j, i);
      default: return conj_if(b(j, i));
    }
  };
  const index_t k =
      (opa == la::Op::NoTrans) ? a.cols() : a.rows();
  for (index_t j = 0; j < c.cols(); ++j) {
    for (index_t i = 0; i < c.rows(); ++i) {
      T acc{};
      for (index_t l = 0; l < k; ++l) acc += at(i, l) * bt(l, j);
      c(i, j) = alpha * acc + beta * c(i, j);
    }
  }
}

/// Relative Frobenius distance ||A - B||_F / max(1, ||B||_F).
template <typename T>
double rel_diff(la::ConstMatrixView<T> a, la::ConstMatrixView<T> b) {
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.cols(), b.cols());
  la::Matrix<T> d = la::Matrix<T>::from_view(a);
  la::axpy(T{-1}, b, d.view());
  const double nb = static_cast<double>(la::norm_fro(b));
  return static_cast<double>(la::norm_fro(d.cview())) / std::max(1.0, nb);
}

/// Well-conditioned random test matrix: random entries with a boosted
/// diagonal, so unpivoted LU and triangular solves stay stable.
template <typename T>
la::Matrix<T> diagonally_dominant(index_t n, std::uint64_t seed) {
  la::Matrix<T> a = la::Matrix<T>::random(n, n, seed);
  for (index_t i = 0; i < n; ++i) a(i, i) += T(static_cast<real_t<T>>(n));
  return a;
}

/// Build an exactly rank-r m x n matrix from random factors.
template <typename T>
la::Matrix<T> rank_r_matrix(index_t m, index_t n, index_t r,
                            std::uint64_t seed) {
  la::Matrix<T> u = la::Matrix<T>::random(m, r, seed);
  la::Matrix<T> v = la::Matrix<T>::random(n, r, seed + 1);
  la::Matrix<T> a(m, n);
  la::gemm(la::Op::NoTrans, la::Op::ConjTrans, T{1}, u.cview(), v.cview(),
           T{}, a.view());
  return a;
}

}  // namespace hcham::testing
