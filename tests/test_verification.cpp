// Tests for the runtime verification layer: the access-conflict checker
// (validated by fault injection that deliberately drops a dependency
// edge), the seeded schedule fuzzer, and the submit-during-wait_all guard.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "runtime/engine.hpp"

namespace hcham {
namespace {

using rt::Engine;
using rt::Handle;
using rt::read;
using rt::readwrite;
using rt::SchedulerPolicy;
using rt::write;

constexpr SchedulerPolicy kPolicies[] = {SchedulerPolicy::WorkStealing,
                                         SchedulerPolicy::LocalityWorkStealing,
                                         SchedulerPolicy::Priority};

class CheckerPolicies : public ::testing::TestWithParam<SchedulerPolicy> {};

/// Fault injection: dropping the single W->W edge lets both writers run
/// concurrently, and the checker must fire under every policy. The task
/// bodies only sleep (no shared data), so the test is TSan-clean.
TEST_P(CheckerPolicies, FiresOnDroppedWriteWriteEdge) {
  Engine eng({.num_workers = 2,
              .policy = GetParam(),
              .check_conflicts = true,
              .fault_drop_edge = 0});
  auto h = eng.register_data("x");
  auto sleepy = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  };
  eng.submit(sleepy, {write(h)}, 0, "w0");
  eng.submit(sleepy, {write(h)}, 0, "w1");
  ASSERT_EQ(eng.num_edges(), 0);  // the only inferred edge was dropped
  try {
    eng.wait_all();
    FAIL() << "expected the conflict checker to fire";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("conflict"), std::string::npos)
        << e.what();
  }
  ASSERT_FALSE(eng.conflicts().empty());
  EXPECT_NE(eng.conflicts().front().find("W/W"), std::string::npos);
}

/// Same fault, R-after-W flavour: a reader racing its producer.
TEST_P(CheckerPolicies, FiresOnDroppedReadAfterWriteEdge) {
  Engine eng({.num_workers = 2,
              .policy = GetParam(),
              .check_conflicts = true,
              .fault_drop_edge = 0});
  auto h = eng.register_data("x");
  auto sleepy = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  };
  eng.submit(sleepy, {write(h)}, 0, "producer");
  eng.submit(sleepy, {read(h)}, 0, "consumer");
  ASSERT_EQ(eng.num_edges(), 0);
  EXPECT_THROW(eng.wait_all(), Error);
  ASSERT_FALSE(eng.conflicts().empty());
}

/// On the unmutated engine the checker must stay silent for a randomized
/// DAG, under every policy.
TEST_P(CheckerPolicies, SilentOnCorrectGraph) {
  Engine eng(
      {.num_workers = 4, .policy = GetParam(), .check_conflicts = true});
  constexpr int kCells = 8;
  std::vector<Handle> handles;
  for (int i = 0; i < kCells; ++i) handles.push_back(eng.register_data());
  std::vector<double> cells(kCells, 1.0);
  Rng rng(42);
  for (int t = 0; t < 300; ++t) {
    const int src = static_cast<int>(rng.uniform_index(kCells));
    const int dst = static_cast<int>(rng.uniform_index(kCells));
    eng.submit([&cells, src, dst] { cells[dst] += 0.25 * cells[src]; },
               {read(handles[src]), readwrite(handles[dst])},
               static_cast<int>(rng.uniform_index(4)));
  }
  EXPECT_NO_THROW(eng.wait_all());
  EXPECT_TRUE(eng.conflicts().empty());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CheckerPolicies,
                         ::testing::ValuesIn(kPolicies));

TEST(FaultInjection, DropsExactlyTheRequestedEdge) {
  auto build = [](index_t drop) {
    Engine eng({.fault_drop_edge = drop});
    auto h = eng.register_data();
    for (int i = 0; i < 4; ++i) eng.submit([] {}, {readwrite(h)});
    return eng.num_edges();
  };
  EXPECT_EQ(build(-1), 3);  // the full W->W chain
  EXPECT_EQ(build(0), 2);
  EXPECT_EQ(build(1), 2);
  EXPECT_EQ(build(2), 2);
  EXPECT_EQ(build(99), 3);  // out of range: nothing dropped
}

TEST(FaultInjection, CheckerSurvivesSecondEpochAfterConflict) {
  Engine eng({.num_workers = 2,
              .check_conflicts = true,
              .fault_drop_edge = 0});
  auto h = eng.register_data();
  auto sleepy = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  };
  eng.submit(sleepy, {write(h)});
  eng.submit(sleepy, {write(h)});
  EXPECT_THROW(eng.wait_all(), Error);
  // The conflict is reported once; a correct follow-up epoch is clean.
  int x = 0;
  eng.submit([&x] { x = 1; }, {readwrite(h)});
  EXPECT_NO_THROW(eng.wait_all());
  EXPECT_EQ(x, 1);
  EXPECT_TRUE(eng.conflicts().empty());
}

// --- seeded schedule fuzzer ------------------------------------------------

TEST(Fuzzer, RespectsChainOrder) {
  // A W->W chain has exactly one topological order; every fuzz seed must
  // reproduce it.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Engine eng({.fuzz_schedule = true, .fuzz_seed = seed});
    auto h = eng.register_data();
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
      eng.submit([&order, i] { order.push_back(i); }, {readwrite(h)});
    eng.wait_all();
    ASSERT_EQ(order.size(), 8u);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i) << "seed " << seed;
  }
}

TEST(Fuzzer, ReplayIsDeterministicPerSeedAndVariesAcrossSeeds) {
  auto run = [](std::uint64_t seed) {
    Engine eng({.record_trace = true,
                .fuzz_schedule = true,
                .fuzz_seed = seed});
    std::vector<Handle> hs;
    for (int i = 0; i < 20; ++i) hs.push_back(eng.register_data());
    for (int i = 0; i < 20; ++i) eng.submit([] {}, {write(hs[i])});
    eng.wait_all();
    std::vector<rt::TaskId> order;
    for (const auto& ev : eng.trace()) order.push_back(ev.task);
    return order;
  };
  std::set<std::vector<rt::TaskId>> distinct;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto a = run(seed);
    const auto b = run(seed);
    EXPECT_EQ(a, b) << "fuzz replay not deterministic for seed " << seed;
    EXPECT_EQ(a.size(), 20u);
    distinct.insert(a);
  }
  // 20 independent tasks have 20! legal orders: five seeds collapsing to
  // one order means the fuzzer is not randomizing at all.
  EXPECT_GT(distinct.size(), 1u);
}

TEST(Fuzzer, DrainsDiamondAcrossEpochs) {
  Engine eng({.fuzz_schedule = true, .fuzz_seed = 9});
  auto a = eng.register_data();
  auto b = eng.register_data();
  auto c = eng.register_data();
  int joined = 0;
  eng.submit([] {}, {write(a)});
  eng.submit([] {}, {read(a), write(b)});
  eng.submit([] {}, {read(a), write(c)});
  eng.submit([&joined] { joined = 1; }, {read(b), read(c)});
  eng.wait_all();
  EXPECT_EQ(joined, 1);
  // Second epoch keeps the handle state.
  eng.submit([&joined] { joined = 2; }, {readwrite(b)});
  eng.wait_all();
  EXPECT_EQ(joined, 2);
}

TEST(Fuzzer, TaskErrorsSurfaceFromWaitAll) {
  Engine eng({.fuzz_schedule = true, .fuzz_seed = 3});
  auto h = eng.register_data();
  std::atomic<int> others{0};
  for (int i = 0; i < 5; ++i)
    eng.submit([&others] { ++others; }, {read(h)});
  eng.submit([] { throw std::runtime_error("fuzz boom"); }, {readwrite(h)});
  EXPECT_THROW(eng.wait_all(), std::runtime_error);
  EXPECT_EQ(others.load(), 5);  // the rest of the graph drained
}

// --- submit-during-wait_all guard ------------------------------------------

TEST(SubmitGuard, SubmitFromInsideATaskThrows) {
  Engine eng;
  auto h = eng.register_data();
  eng.submit([&eng, h] { eng.submit([] {}, {read(h)}); }, {write(h)});
  EXPECT_THROW(eng.wait_all(), Error);
  // The offending submit was rejected before touching the graph, and the
  // engine stays usable.
  EXPECT_EQ(eng.num_tasks(), 1);
  int x = 0;
  eng.submit([&x] { x = 1; }, {readwrite(h)});
  EXPECT_NO_THROW(eng.wait_all());
  EXPECT_EQ(x, 1);
}

TEST(SubmitGuard, SubmitFromWorkerPoolThrows) {
  Engine eng({.num_workers = 3});
  auto h = eng.register_data();
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i)
    eng.submit([&ran] { ++ran; }, {read(h)});
  eng.submit([&eng, h] { eng.submit([] {}, {read(h)}); }, {write(h)});
  EXPECT_THROW(eng.wait_all(), Error);
  EXPECT_EQ(ran.load(), 10);
}

}  // namespace
}  // namespace hcham
