// HODLR-style structures (weak admissibility: every off-diagonal block is
// one low-rank leaf; the Block-Separable format of the paper's Section
// III). These exercise the Rk-dominant code paths of H-LU and H-GEMM that
// strong admissibility rarely hits at small sizes.
#include <gtest/gtest.h>

#include "core/hlu_tasks.hpp"
#include "hmat_test_utils.hpp"

namespace hcham {
namespace {

using la::Matrix;
using la::Op;
using rk::TruncationParams;
using hcham::testing::HmatFixture;
using hcham::testing::rel_diff;
using hcham::testing::zdouble;

template <typename T>
hmat::HMatrix<T> build_weak(const HmatFixture<T>& fx, double eps) {
  hmat::HMatrixOptions opts;
  opts.admissibility = cluster::AdmissibilityCondition::weak();
  opts.compression.eps = eps;
  return hmat::build_hmatrix<T>(fx.tree, fx.tree->root(), fx.tree->root(),
                                fx.generator(), opts);
}

TEST(WeakAdmissibility, EveryOffDiagonalBlockIsRk) {
  HmatFixture<double> fx(400);
  auto h = build_weak(fx, 1e-6);
  // Walk: each hierarchical node's off-diagonal children must be Rk.
  std::vector<const hmat::HMatrix<double>*> stack{&h};
  while (!stack.empty()) {
    const auto* n = stack.back();
    stack.pop_back();
    if (!n->is_hierarchical()) continue;
    EXPECT_TRUE(n->child(0, 1).is_rk());
    EXPECT_TRUE(n->child(1, 0).is_rk());
    stack.push_back(&n->child(0, 0));
    stack.push_back(&n->child(1, 1));
  }
}

TEST(WeakAdmissibility, ApproximatesKernel) {
  HmatFixture<double> fx(350);
  auto h = build_weak(fx, 1e-6);
  EXPECT_LT(rel_diff<double>(h.to_dense().cview(),
                             fx.dense_permuted().cview()),
            1e-4);
}

TEST(WeakAdmissibility, HigherRanksThanStrong) {
  // Weak admissibility compresses blocks that strong would subdivide, so
  // its maximal rank is larger (1D interaction manifolds are gentle here,
  // but the ordering must hold).
  HmatFixture<double> fx(800);
  auto weak = build_weak(fx, 1e-6);
  auto strong = fx.build(hcham::testing::hmat_options(1e-6));
  EXPECT_GE(weak.stats().max_rank, strong.stats().max_rank);
  EXPECT_LT(weak.stats().rk_leaves, strong.stats().rk_leaves + 1000);
}

TEST(WeakAdmissibility, HluSolves) {
  HmatFixture<double> fx(500);
  auto h = build_weak(fx, 1e-8);
  auto dense = fx.dense_permuted();
  auto x0 = Matrix<double>::random(500, 1, 3);
  Matrix<double> b(500, 1);
  la::gemm(Op::NoTrans, Op::NoTrans, 1.0, dense.cview(), x0.cview(), 0.0,
           b.view());
  ASSERT_EQ(hmat::hlu(h, TruncationParams{1e-8, -1}), 0);
  hmat::hlu_solve(h, b.view());
  EXPECT_LT(rel_diff<double>(b.cview(), x0.cview()), 1e-4);
}

TEST(WeakAdmissibility, HluSolvesComplex) {
  HmatFixture<zdouble> fx(400);
  auto h = build_weak(fx, 1e-8);
  auto dense = fx.dense_permuted();
  auto x0 = Matrix<zdouble>::random(400, 1, 5);
  Matrix<zdouble> b(400, 1);
  la::gemm(Op::NoTrans, Op::NoTrans, zdouble(1), dense.cview(), x0.cview(),
           zdouble(0), b.view());
  ASSERT_EQ(hmat::hlu(h, TruncationParams{1e-8, -1}), 0);
  hmat::hlu_solve(h, b.view());
  EXPECT_LT(rel_diff<zdouble>(b.cview(), x0.cview()), 1e-4);
}

TEST(WeakAdmissibility, CholeskyOnSpdKernel) {
  HmatFixture<double> fx(400);
  auto h = build_weak(fx, 1e-8);
  auto dense = fx.dense_permuted();
  auto x0 = Matrix<double>::random(400, 1, 7);
  Matrix<double> b(400, 1);
  la::gemm(Op::NoTrans, Op::NoTrans, 1.0, dense.cview(), x0.cview(), 0.0,
           b.view());
  ASSERT_EQ(hmat::hchol(h, TruncationParams{1e-8, -1}), 0);
  hmat::hchol_solve(h, b.view());
  EXPECT_LT(rel_diff<double>(b.cview(), x0.cview()), 1e-4);
}

TEST(WeakAdmissibility, FineGrainTaskLuMatchesSequential) {
  HmatFixture<double> fx(400);
  auto h_seq = build_weak(fx, 1e-8);
  auto h_task = build_weak(fx, 1e-8);
  ASSERT_EQ(hmat::hlu(h_seq, TruncationParams{1e-8, -1}), 0);
  rt::Engine eng({.num_workers = 3});
  core::HluTaskGraph<double> graph(eng, h_task, TruncationParams{1e-8, -1});
  graph.submit();
  eng.wait_all();
  EXPECT_LT(rel_diff<double>(h_task.to_dense().cview(),
                             h_seq.to_dense().cview()),
            1e-10);
}

}  // namespace
}  // namespace hcham
